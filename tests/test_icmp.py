"""ICMP error construction/parsing and the residual-TTL distance rule."""

import pytest
from hypothesis import given, strategies as st

from repro.net.icmp import (
    IcmpResponse,
    ResponseKind,
    distance_from_unreachable,
    pack_icmp_error,
    unpack_icmp_error,
)
from repro.net.packets import PacketError, ProbeHeader


def _probe(dst=0x14000001, residual_ttl=5, src_port=40000):
    return ProbeHeader(src=0x0A000001, dst=dst, ttl=residual_ttl, ipid=0x1234,
                       src_port=src_port, udp_length=20)


class TestResponseKind:
    def test_unreachable_family(self):
        assert ResponseKind.PORT_UNREACHABLE.is_unreachable
        assert ResponseKind.HOST_UNREACHABLE.is_unreachable
        assert ResponseKind.TCP_RST.is_unreachable

    def test_ttl_exceeded_is_not_unreachable(self):
        assert not ResponseKind.TTL_EXCEEDED.is_unreachable
        assert not ResponseKind.ECHO_REPLY.is_unreachable


class TestPackUnpack:
    @pytest.mark.parametrize("kind", [ResponseKind.TTL_EXCEEDED,
                                      ResponseKind.PORT_UNREACHABLE,
                                      ResponseKind.HOST_UNREACHABLE])
    def test_round_trip_kind(self, kind):
        probe = _probe()
        wire = pack_icmp_error(kind, responder=0x3C000001,
                               vantage=0x0A000001,
                               quoted_probe_bytes=probe.quotation())
        parsed = unpack_icmp_error(wire, arrival_time=1.5)
        assert parsed.kind is kind
        assert parsed.responder == 0x3C000001
        assert parsed.arrival_time == 1.5

    def test_quotation_fields_survive(self):
        probe = _probe(dst=0x14000063, residual_ttl=9, src_port=31337)
        wire = pack_icmp_error(ResponseKind.TTL_EXCEEDED, 7, 8,
                               probe.quotation())
        parsed = unpack_icmp_error(wire)
        assert parsed.quoted.dst == 0x14000063
        assert parsed.quoted_residual_ttl == 9
        assert parsed.quoted.src_port == 31337
        assert parsed.probe_dst == 0x14000063

    def test_rejects_rst_kind(self):
        with pytest.raises(PacketError):
            pack_icmp_error(ResponseKind.TCP_RST, 1, 2, _probe().quotation())

    def test_rejects_short_quotation(self):
        with pytest.raises(PacketError):
            pack_icmp_error(ResponseKind.TTL_EXCEEDED, 1, 2, b"\x45" * 20)

    def test_unpack_rejects_non_icmp(self):
        wire = bytearray(pack_icmp_error(ResponseKind.TTL_EXCEEDED, 1, 2,
                                         _probe().quotation()))
        wire[9] = 17  # claim UDP in the outer header
        with pytest.raises(PacketError):
            unpack_icmp_error(bytes(wire))

    def test_unpack_rejects_unknown_type(self):
        wire = bytearray(pack_icmp_error(ResponseKind.TTL_EXCEEDED, 1, 2,
                                         _probe().quotation()))
        wire[20] = 42  # ICMP type
        with pytest.raises(PacketError):
            unpack_icmp_error(bytes(wire))


class TestDistanceRule:
    def _response(self, residual):
        return IcmpResponse(kind=ResponseKind.PORT_UNREACHABLE,
                            responder=1, quoted=_probe(residual_ttl=residual),
                            arrival_time=0.0, quoted_residual_ttl=residual)

    def test_destination_one_hop_away(self):
        # Probe TTL 32 arriving with residual 32 means zero decrements:
        # the destination is the first hop.
        assert distance_from_unreachable(self._response(32), 32) == 1

    def test_paper_arithmetic(self):
        # d = initial - residual + 1 (paper §3.3.1).
        assert distance_from_unreachable(self._response(18), 32) == 15

    def test_residual_larger_than_initial_is_invalid(self):
        # A middlebox boosted the TTL beyond what we sent.
        assert distance_from_unreachable(self._response(33), 32) is None

    def test_zero_residual_is_invalid(self):
        assert distance_from_unreachable(self._response(0), 32) is None

    @given(st.integers(min_value=1, max_value=32),
           st.integers(min_value=1, max_value=32))
    def test_distance_bounds(self, initial, residual):
        response = self._response(residual)
        distance = distance_from_unreachable(response, initial)
        if residual <= initial:
            assert distance == initial - residual + 1
            assert 1 <= distance <= initial
        else:
            assert distance is None
