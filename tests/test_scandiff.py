"""Scan diffing (repro.obs.scandiff) and traceroute-artifact detection
(repro.obs.artifacts): deterministic cause attribution for clean vs
faulted runs, result-file mode, and the loop/cycle/diamond detectors."""

import json

import pytest

from repro.core import FlashRoute, FlashRouteConfig
from repro.core.output import save_json
from repro.obs import (
    ArtifactReport,
    EventRecorder,
    MetricsRegistry,
    Telemetry,
    detect_artifacts,
    read_events,
    record_artifacts,
)
from repro.obs.scandiff import (
    CAUSES,
    cause_counts,
    diff_views,
    load_view,
    render_scan_diff,
    view_from_events,
)
from repro.simnet import (
    FaultModel,
    SimulatedNetwork,
    Topology,
    TopologyConfig,
)

CFG = TopologyConfig(num_prefixes=96, seed=13)
LOSS = 0.03
FAULT_SEED = 7


@pytest.fixture(scope="module")
def topology():
    return Topology(CFG)


def run_scan(topology, events_path=None, faults=None, seed=1):
    telemetry = None
    if events_path is not None:
        telemetry = Telemetry(events=EventRecorder(path=str(events_path)))
    network = SimulatedNetwork(topology, faults=faults)
    config = FlashRouteConfig(split_ttl=16, gap_limit=5, seed=seed)
    result = FlashRoute(config, telemetry=telemetry).scan(network)
    if telemetry is not None:
        telemetry.close()
    return result


@pytest.fixture(scope="module")
def clean_log(topology, tmp_path_factory):
    path = tmp_path_factory.mktemp("scandiff") / "clean.jsonl"
    result = run_scan(topology, events_path=path)
    return path, result


@pytest.fixture(scope="module")
def lossy_log(topology, tmp_path_factory):
    path = tmp_path_factory.mktemp("scandiff") / "lossy.jsonl"
    faults = FaultModel.symmetric_loss(LOSS, seed=FAULT_SEED)
    result = run_scan(topology, events_path=path, faults=faults)
    return path, result


# --------------------------------------------------------------------- #
# Artifacts
# --------------------------------------------------------------------- #

class TestArtifacts:
    def test_clean_routes_have_no_artifacts(self):
        routes = {1: {1: 10, 2: 20, 3: 30}, 2: {1: 10, 2: 21, 3: 30}}
        report = detect_artifacts({1: routes[1]})
        assert report.empty()

    def test_loop_adjacent_repetition(self):
        report = detect_artifacts({5: {3: 77, 4: 77, 5: 88}})
        assert report.loops == [(5, 3)]
        assert not report.cycles

    def test_cycle_non_adjacent_revisit(self):
        report = detect_artifacts({5: {3: 77, 4: 88, 5: 77}})
        assert report.cycles == [(5, 3, 5)]
        assert not report.loops

    def test_triple_repetition_counts_two_loops(self):
        report = detect_artifacts({5: {3: 77, 4: 77, 5: 77}})
        assert report.loops == [(5, 3), (5, 4)]
        assert not report.cycles

    def test_diamond_needs_two_distinct_middles(self):
        routes = {1: {1: 10, 2: 20, 3: 30},
                  2: {1: 10, 2: 21, 3: 30}}
        report = detect_artifacts(routes)
        assert report.diamonds == {(10, 30): [20, 21]}
        # One middle is not a diamond.
        assert detect_artifacts({1: routes[1]}).diamond_count == 0

    def test_hole_breaks_two_hop_window(self):
        # TTLs 1,2,4: no consecutive triple, so no diamond edges at all.
        routes = {1: {1: 10, 2: 20, 4: 30},
                  2: {1: 10, 2: 21, 4: 30}}
        assert detect_artifacts(routes).diamond_count == 0

    def test_record_artifacts_counters(self):
        reg = MetricsRegistry()
        report = ArtifactReport(loops=[(1, 2)], cycles=[(1, 2, 5)],
                                diamonds={(10, 30): [20, 21]})
        record_artifacts(reg, report)
        assert reg.counter("scan.artifacts.loops") == 1
        assert reg.counter("scan.artifacts.cycles") == 1
        assert reg.counter("scan.artifacts.diamonds") == 1


# --------------------------------------------------------------------- #
# Diffing
# --------------------------------------------------------------------- #

class TestScanDiff:
    def test_identical_runs_no_divergences(self, clean_log):
        path, _ = clean_log
        view = load_view(str(path))
        assert diff_views(view, view) == []

    def test_every_divergence_gets_concrete_cause(self, clean_log,
                                                  lossy_log):
        path_a, _ = clean_log
        path_b, _ = lossy_log
        fault_model = FaultModel.symmetric_loss(LOSS, seed=FAULT_SEED)
        divergences = diff_views(load_view(str(path_a)),
                                 load_view(str(path_b)), fault_model)
        assert divergences  # 3% loss certainly diverges somewhere
        causes = cause_counts(divergences)
        assert set(causes) <= set(CAUSES)
        # With both sides probe-level and the correct fault model, no
        # divergence is left unattributed.
        assert "unattributed" not in causes
        # Fault-induced holes dominate a loss-only run.
        assert causes.get("probe_loss", 0) + causes.get("response_loss", 0) > 0

    def test_attribution_is_reproducible(self, clean_log, lossy_log):
        path_a, _ = clean_log
        path_b, _ = lossy_log
        fault_model = FaultModel.symmetric_loss(LOSS, seed=FAULT_SEED)
        first = diff_views(load_view(str(path_a)), load_view(str(path_b)),
                           fault_model)
        second = diff_views(load_view(str(path_a)), load_view(str(path_b)),
                            fault_model)
        assert first == second

    def test_hole_attribution_matches_injector(self, clean_log, lossy_log):
        """Every b-side hole blamed on a fault names a draw the injector
        confirms for that exact probe."""
        from repro.simnet.faults import FaultInjector
        path_a, _ = clean_log
        path_b, _ = lossy_log
        view_a = load_view(str(path_a))
        view_b = load_view(str(path_b))
        fault_model = FaultModel.symmetric_loss(LOSS, seed=FAULT_SEED)
        injector = FaultInjector(fault_model)
        for d in diff_views(view_a, view_b, fault_model):
            if d.side == "b" and d.cause in ("probe_loss", "response_loss"):
                vt, dst = view_b.probes[(d.prefix, d.ttl)]
                responder = view_a.routes[d.prefix][d.ttl]
                assert injector.explain(dst, d.ttl, vt,
                                        responder=responder) == d.cause

    def test_result_file_mode(self, topology, tmp_path, clean_log):
        path_a, result_a = clean_log
        faults = FaultModel.symmetric_loss(LOSS, seed=FAULT_SEED)
        result_b = run_scan(topology, faults=faults)
        file_a = tmp_path / "a.json"
        file_b = tmp_path / "b.json"
        save_json(result_a, str(file_a))
        save_json(result_b, str(file_b))
        view_a = load_view(str(file_a))
        view_b = load_view(str(file_b))
        assert view_a.source == "result" and not view_a.has_probe_level
        divergences = diff_views(view_a, view_b)
        assert divergences
        # Result files have no probe-level data: holes are detected but
        # stay unattributed.
        causes = cause_counts(divergences)
        assert "unattributed" in causes
        # Mixed mode works too: events on one side, results on the other.
        mixed = diff_views(load_view(str(path_a)), view_b)
        assert mixed

    def test_view_reconstruction_matches_result(self, lossy_log):
        path, result = lossy_log
        view = view_from_events(str(path), read_events(str(path)))
        assert view.routes == result.routes
        assert view.dest_distance == result.dest_distance

    def test_render_and_load_view_errors(self, clean_log, tmp_path):
        path, _ = clean_log
        view = load_view(str(path))
        text = render_scan_diff(view, view, diff_views(view, view))
        assert "no divergences" in text
        junk = tmp_path / "junk.txt"
        junk.write_text("not a log\n")
        with pytest.raises(ValueError):
            load_view(str(junk))
        not_result = tmp_path / "other.json"
        not_result.write_text(json.dumps({"hello": 1}))
        with pytest.raises(ValueError):
            load_view(str(not_result))
