"""IPv6 address parsing/formatting and prefix math."""

import pytest
from hypothesis import given, strategies as st

from repro.net.addr6 import (
    Address6Error,
    MAX_IPV6,
    addr_in_subnet64,
    cidr6_to_range,
    int_to_ip6,
    ip6_to_int,
    prefix6_of,
    subnet64_of,
)


class TestParse:
    @pytest.mark.parametrize("text,value", [
        ("::", 0),
        ("::1", 1),
        ("2001:db8::1", 0x20010db8000000000000000000000001),
        ("fe80::", 0xfe800000000000000000000000000000),
        ("1:2:3:4:5:6:7:8", 0x00010002000300040005000600070008),
        ("ffff:ffff:ffff:ffff:ffff:ffff:ffff:ffff", MAX_IPV6),
    ])
    def test_known_values(self, text, value):
        assert ip6_to_int(text) == value

    @pytest.mark.parametrize("bad", [
        "", ":", ":::", "1::2::3", "12345::", "g::", "1:2:3:4:5:6:7",
        "1:2:3:4:5:6:7:8:9", "1:2:3:4:5:6:7:8::",
    ])
    def test_rejects_malformed(self, bad):
        with pytest.raises(Address6Error):
            ip6_to_int(bad)


class TestFormat:
    @pytest.mark.parametrize("value,text", [
        (0, "::"),
        (1, "::1"),
        (0x20010db8000000000000000000000001, "2001:db8::1"),
        (0x00010002000300040005000600070008, "1:2:3:4:5:6:7:8"),
    ])
    def test_canonical(self, value, text):
        assert int_to_ip6(value) == text

    def test_longest_zero_run_compressed(self):
        # 1:0:0:2:0:0:0:3 -> the later, longer run gets the '::'.
        value = ip6_to_int("1:0:0:2:0:0:0:3")
        assert int_to_ip6(value) == "1:0:0:2::3"

    def test_single_zero_group_not_compressed(self):
        value = ip6_to_int("1:0:2:3:4:5:6:7")
        assert int_to_ip6(value) == "1:0:2:3:4:5:6:7"

    def test_rejects_out_of_range(self):
        with pytest.raises(Address6Error):
            int_to_ip6(2**128)
        with pytest.raises(Address6Error):
            int_to_ip6(-1)

    @given(st.integers(min_value=0, max_value=MAX_IPV6))
    def test_round_trip(self, value):
        assert ip6_to_int(int_to_ip6(value)) == value


class TestPrefixMath:
    def test_prefix6_of(self):
        addr = ip6_to_int("2001:db8:1:2::99")
        assert int_to_ip6(prefix6_of(addr, 48)) == "2001:db8:1::"

    def test_prefix_zero(self):
        assert prefix6_of(MAX_IPV6, 0) == 0

    def test_subnet64(self):
        addr = ip6_to_int("2001:db8:1:2::99")
        assert subnet64_of(addr) == addr >> 64

    def test_compose(self):
        addr = ip6_to_int("2001:db8::42")
        assert addr_in_subnet64(subnet64_of(addr), 0x42) == addr

    def test_compose_rejects_bad_interface_id(self):
        with pytest.raises(Address6Error):
            addr_in_subnet64(0, 2**64)

    def test_cidr_range(self):
        first, last = cidr6_to_range("2001:db8::/64")
        assert last - first + 1 == 2**64
        assert int_to_ip6(first) == "2001:db8::"

    def test_cidr_rejects_bad_length(self):
        with pytest.raises(Address6Error):
            cidr6_to_range("2001:db8::/129")
