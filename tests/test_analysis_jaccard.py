"""Per-hop Jaccard analysis (Fig. 8 machinery)."""

import pytest

from repro.analysis.jaccard import (
    interfaces_by_hops_from_destination,
    jaccard,
    jaccard_by_hops_from_destination,
)
from repro.core.results import ScanResult


class TestJaccard:
    def test_identical(self):
        assert jaccard({1, 2}, {1, 2}) == 1.0

    def test_disjoint(self):
        assert jaccard({1}, {2}) == 0.0

    def test_partial(self):
        assert jaccard({1, 2}, {2, 3}) == pytest.approx(1 / 3)

    def test_both_empty_defined_as_one(self):
        assert jaccard(set(), set()) == 1.0

    def test_one_empty(self):
        assert jaccard({1}, set()) == 0.0


def _scan_with_route(prefix, hops, dest_distance=None):
    result = ScanResult(tool="t")
    result.targets[prefix] = (prefix << 8) | 1
    for ttl, responder in hops.items():
        result.add_hop(prefix, ttl, responder)
    if dest_distance is not None:
        result.record_destination(prefix, dest_distance)
    return result


class TestGrouping:
    def test_hops_back_from_responding_destination(self):
        scan = _scan_with_route(7, {3: 100, 4: 101}, dest_distance=5)
        grouped = interfaces_by_hops_from_destination(scan, max_back=4)
        assert grouped[1] == {101}
        assert grouped[2] == {100}

    def test_falls_back_to_deepest_hop(self):
        # Without a destination response, the deepest hop + 1 is the end.
        scan = _scan_with_route(7, {3: 100, 4: 101})
        grouped = interfaces_by_hops_from_destination(scan, max_back=4)
        assert grouped[1] == {101}
        assert grouped[2] == {100}

    def test_out_of_window_hops_ignored(self):
        scan = _scan_with_route(7, {1: 99, 9: 101}, dest_distance=10)
        grouped = interfaces_by_hops_from_destination(scan, max_back=3)
        assert 99 not in {i for back in grouped.values() for i in back}


class TestFigure8Shape:
    def test_identical_scans_all_ones(self):
        scan = _scan_with_route(7, {3: 100, 4: 101}, dest_distance=5)
        series = jaccard_by_hops_from_destination(scan, scan, max_back=5)
        assert all(value == 1.0 for value in series.values())

    def test_last_hop_divergence_detected(self):
        hitlist = _scan_with_route(7, {3: 100, 4: 101}, dest_distance=5)
        random_scan = _scan_with_route(7, {3: 100, 4: 999}, dest_distance=5)
        series = jaccard_by_hops_from_destination(hitlist, random_scan,
                                                  max_back=3)
        assert series[1] == 0.0   # divergent right before the destination
        assert series[2] == 1.0   # identical farther back
