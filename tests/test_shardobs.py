"""Shard-aware observability (PR 9): heartbeats, merged span forests,
the per-slice shard report, live multi-worker progress, per-slice pcaps.

The contracts under test:

* a sharded ``--trace`` run produces one multi-root forest that passes
  the (stricter, forest-aware) ``validate_trace`` and whose
  deterministic content is byte-identical for every worker count;
* the merged metrics snapshot carries a deterministic per-slice shard
  dimension, with all wall-clock shard data quarantined in the wall
  report (never in counters/gauges);
* heartbeats are throttled on the worker's virtual clock, carry the
  issue's schema fields, and cost nothing when disabled;
* the parent progress view renders throttled aggregate lines with
  per-worker rates and straggler flags;
* the snapshot merge + breakdown render work under both ``fork`` and
  ``spawn`` start methods.
"""

import io
import json
import multiprocessing

import pytest

from repro.core.sharding import ShardPlan, run_sharded_scan
from repro.obs.metrics import deterministic_snapshot
from repro.obs.report import render_shard_breakdown, shard_breakdown_rows
from repro.obs.shardobs import (
    HEARTBEAT_SCHEMA,
    ShardHeartbeatReporter,
    ShardProgressView,
    add_shard_dimension,
    merge_trace_logs,
    shard_imbalance,
    shard_wall_report,
    slice_metric_name,
    slice_pcap_path,
)
from repro.obs.trace import (
    TRACE_SCHEMA,
    ScanTracer,
    deterministic_trace,
    validate_trace,
)
from repro.simnet.config import TopologyConfig

_PREFIXES = 96
_SEED = 11


def _plan(shards=1, **kwargs):
    return ShardPlan(tool="flashroute-16",
                     topology=TopologyConfig(num_prefixes=_PREFIXES,
                                             seed=_SEED),
                     shards=shards, **kwargs)


def _header_line():
    return json.dumps({"ev": "trace", "schema": TRACE_SCHEMA,
                       "vt": 0.0, "wt": 1.0}, sort_keys=True)


def _slice_trace(vt_base=0.0):
    sink = io.StringIO()
    tracer = ScanTracer(stream=sink)
    tracer.begin("scan", "demo", vt_base, targets=4)
    tracer.begin("phase", "main", vt_base + 1.0)
    tracer.event("checkpoint", vt_base + 1.5, probes=10)
    tracer.end("phase", "main", vt_base + 2.0)
    tracer.end("scan", "demo", vt_base + 3.0)
    tracer.close()
    return sink.getvalue()


# --------------------------------------------------------------------- #
# validate_trace: multi-root forests (satellite 2)
# --------------------------------------------------------------------- #

class TestValidateTraceForests:
    def test_accepts_sequential_roots(self):
        merged = merge_trace_logs([_slice_trace(), _slice_trace(10.0)])
        events = [json.loads(line) for line in merged.splitlines()]
        validate_trace(events)

    def test_rejects_duplicate_span_ids_across_roots(self):
        events = [json.loads(_header_line()),
                  {"ev": "begin", "span": "scan", "name": "a", "id": 1,
                   "parent": 0, "vt": 0.0},
                  {"ev": "end", "span": "scan", "name": "a", "id": 1,
                   "vt": 1.0},
                  {"ev": "begin", "span": "scan", "name": "b", "id": 1,
                   "parent": 0, "vt": 2.0},
                  {"ev": "end", "span": "scan", "name": "b", "id": 1,
                   "vt": 3.0}]
        with pytest.raises(ValueError, match="duplicate span id"):
            validate_trace(events)

    def test_rejects_orphaned_span_parent(self):
        # Root 2's child claims root 1's span as parent: an orphan that
        # would silently cross roots in a bad merge.
        events = [json.loads(_header_line()),
                  {"ev": "begin", "span": "scan", "name": "a", "id": 1,
                   "parent": 0, "vt": 0.0},
                  {"ev": "end", "span": "scan", "name": "a", "id": 1,
                   "vt": 1.0},
                  {"ev": "begin", "span": "scan", "name": "b", "id": 2,
                   "parent": 0, "vt": 2.0},
                  {"ev": "begin", "span": "phase", "name": "p", "id": 3,
                   "parent": 1, "vt": 2.5},
                  {"ev": "end", "span": "phase", "name": "p", "id": 3,
                   "vt": 2.6},
                  {"ev": "end", "span": "scan", "name": "b", "id": 2,
                   "vt": 3.0}]
        with pytest.raises(ValueError, match="orphaned span"):
            validate_trace(events)

    def test_rejects_orphaned_point_event(self):
        events = [json.loads(_header_line()),
                  {"ev": "begin", "span": "scan", "name": "a", "id": 1,
                   "parent": 0, "vt": 0.0},
                  {"ev": "event", "name": "stray", "parent": 99,
                   "vt": 0.5},
                  {"ev": "end", "span": "scan", "name": "a", "id": 1,
                   "vt": 1.0}]
        with pytest.raises(ValueError, match="orphaned event"):
            validate_trace(events)

    def test_rejects_overlapping_spans_by_id(self):
        # begin/end pairs whose span kind and name line up but whose ids
        # interleave — overlap across roots a name check can't catch.
        events = [json.loads(_header_line()),
                  {"ev": "begin", "span": "scan", "name": "a", "id": 1,
                   "parent": 0, "vt": 0.0},
                  {"ev": "end", "span": "scan", "name": "a", "id": 7,
                   "vt": 1.0}]
        with pytest.raises(ValueError, match="overlapping spans"):
            validate_trace(events)

    def test_rejects_duplicate_header(self):
        events = [json.loads(_header_line()), json.loads(_header_line())]
        with pytest.raises(ValueError, match="duplicate trace header"):
            validate_trace(events)

    def test_accepts_idless_legacy_events(self):
        # Hand-built events without id/parent (as older tests construct)
        # still validate on the name/nesting checks alone.
        events = [json.loads(_header_line()),
                  {"ev": "begin", "span": "scan", "name": "a", "vt": 0.0},
                  {"ev": "end", "span": "scan", "name": "a", "vt": 1.0}]
        validate_trace(events)


# --------------------------------------------------------------------- #
# merge_trace_logs
# --------------------------------------------------------------------- #

class TestMergeTraceLogs:
    def test_single_header_ids_renumbered_slice_tagged(self):
        merged = merge_trace_logs([_slice_trace(), _slice_trace()])
        events = [json.loads(line) for line in merged.splitlines()]
        assert [e["ev"] for e in events].count("trace") == 1
        begins = [e for e in events if e["ev"] == "begin"]
        assert [e["id"] for e in begins] == [1, 2, 3, 4]
        # Roots keep parent 0; nested spans point into their own slice.
        assert [e["parent"] for e in begins] == [0, 1, 0, 3]
        assert [e["slice"] for e in begins] == [0, 0, 1, 1]
        points = [e for e in events if e["ev"] == "event"]
        assert [e["parent"] for e in points] == [2, 4]
        validate_trace(events)

    def test_deterministic_in_input_order_only(self):
        a = merge_trace_logs([_slice_trace(), _slice_trace(5.0)])
        b = merge_trace_logs([_slice_trace(), _slice_trace(5.0)])
        assert deterministic_trace([json.loads(line)
                                    for line in a.splitlines()]) == \
            deterministic_trace([json.loads(line)
                                 for line in b.splitlines()])

    def test_rejects_empty_and_headerless_inputs(self):
        with pytest.raises(ValueError, match="at least one"):
            merge_trace_logs([])
        with pytest.raises(ValueError, match="empty trace"):
            merge_trace_logs([_slice_trace(), "   \n"])
        with pytest.raises(ValueError, match="missing trace header"):
            merge_trace_logs(['{"ev": "begin"}'])


# --------------------------------------------------------------------- #
# Heartbeats (worker side)
# --------------------------------------------------------------------- #

class TestShardHeartbeatReporter:
    def test_record_schema_and_fields(self):
        records = []
        reporter = ShardHeartbeatReporter(1.0, records.append, 7)
        reporter.maybe_report(0.0, {"tool": "FlashRoute-16", "round": 1,
                                    "probes": 100, "responses": 40,
                                    "pps": 50.0, "remaining": 12,
                                    "interfaces": 9, "ignored": "x"})
        assert len(records) == 1
        record = records[0]
        assert record["schema"] == HEARTBEAT_SCHEMA
        assert record["slice"] == 7
        assert isinstance(record["pid"], int)
        assert record["vt"] == 0.0
        assert record["wall"] > 0
        assert record["probes"] == 100
        assert record["responses"] == 40
        assert "ignored" not in record

    def test_throttled_on_virtual_clock(self):
        records = []
        reporter = ShardHeartbeatReporter(10.0, records.append, 0,
                                          min_wall_seconds=0.0)
        for vt in (0.0, 1.0, 5.0, 9.9, 10.0, 15.0, 20.0):
            reporter.maybe_report(vt, {"probes": int(vt)})
        assert [r["vt"] for r in records] == [0.0, 10.0, 20.0]
        assert reporter.heartbeats_sent == 3

    def test_wall_floor_suppresses_bursts(self):
        # A virtual clock racing wall time must not flood the channel:
        # with a large wall floor only the first beat of a rapid burst
        # is emitted, and the virtual throttle still advances.
        records = []
        reporter = ShardHeartbeatReporter(1.0, records.append, 0,
                                          min_wall_seconds=3600.0)
        for vt in (0.0, 1.0, 2.0, 3.0):
            reporter.maybe_report(vt, {"probes": int(vt)})
        assert [r["vt"] for r in records] == [0.0]
        assert reporter.heartbeats_sent == 1
        assert reporter.heartbeats_suppressed == 3


# --------------------------------------------------------------------- #
# Progress view (parent side)
# --------------------------------------------------------------------- #

def _beat(pid, wall, probes, slice_index=0):
    return {"schema": HEARTBEAT_SCHEMA, "slice": slice_index, "pid": pid,
            "vt": wall, "wall": wall, "probes": probes}


class TestShardProgressView:
    def _view(self, stream, interval=1.0, **kwargs):
        clock = iter(float(i) for i in range(1000))
        return ShardProgressView(slices=16, workers=4, interval=interval,
                                 stream=stream,
                                 clock=lambda: next(clock), **kwargs)

    def test_rates_eta_and_aggregate(self):
        stream = io.StringIO()
        view = self._view(stream, interval=1000.0)
        view.observe(_beat(1, 10.0, 0))
        view.observe(_beat(2, 10.0, 0))
        view.observe(_beat(1, 11.0, 500))
        view.observe(_beat(2, 11.0, 400))
        assert view.worker_rates() == {1: 500.0, 2: 400.0}
        view.slice_done(0, 900, 50.0)
        view.finish(900)
        lines = stream.getvalue().splitlines()
        assert lines[0].startswith("[shard-progress] slices=0/16")
        assert lines[-1].startswith("[shard-progress] done slices=1/16")
        assert "agg_pps=" in lines[-1]

    def test_render_throttled_by_wall_interval(self):
        stream = io.StringIO()
        view = self._view(stream, interval=100.0)
        for step in range(10):
            view.observe(_beat(1, 10.0 + step, step * 50))
        # First observe renders immediately; the rest fall inside the
        # 100s wall window.
        assert view.lines_emitted == 1
        view.finish()
        assert view.lines_emitted == 2

    def test_straggler_flagged_below_median_by_factor(self):
        stream = io.StringIO()
        view = self._view(stream, interval=1000.0, straggler_factor=4.0)
        for pid, rate in ((1, 1000), (2, 900), (3, 1100), (4, 10)):
            view.observe(_beat(pid, 10.0, 0, slice_index=pid))
            view.observe(_beat(pid, 11.0, rate, slice_index=pid))
        assert view.stragglers() == [4]
        line = view._line(20.0)
        assert "pid4=10pps!straggler" in line
        assert "pid1=1,000pps " in line or "pid1=1,000pps" in line

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            ShardProgressView(slices=16, interval=0.0)
        with pytest.raises(ValueError):
            ShardProgressView(slices=16, straggler_factor=0.5)


# --------------------------------------------------------------------- #
# Shard report: metrics dimension + wall quarantine
# --------------------------------------------------------------------- #

class TestShardReport:
    def _outcome(self, shards, **kwargs):
        return run_sharded_scan(_plan(shards, collect_metrics=True,
                                      **kwargs))

    def test_dimension_deterministic_across_worker_counts(self):
        one = self._outcome(1)
        four = self._outcome(4)
        s1 = deterministic_snapshot(one.metrics_snapshot)
        s4 = deterministic_snapshot(four.metrics_snapshot)
        assert s1 == s4
        assert s1["gauges"]["shard.slices"] == 16
        assert s1["gauges"]["shard.imbalance_factor"] >= 1.0
        probes = [s1["counters"][slice_metric_name(i, 16, "probes")]
                  for i in range(16)]
        assert sum(probes) == one.result.probes_sent

    def test_wall_data_quarantined(self):
        outcome = self._outcome(2)
        snapshot = outcome.metrics_snapshot
        for section in ("counters", "gauges"):
            for name in snapshot[section]:
                assert "pid" not in name and "cpu" not in name and \
                    "wall" not in name, name
        report = shard_wall_report(outcome.slice_stats)
        assert len(report["slices"]) == 16
        assert all(entry["wall_seconds"] > 0
                   for entry in report["slices"])
        assert sum(bucket["probes"]
                   for bucket in report["workers"].values()) \
            == outcome.result.probes_sent

    def test_imbalance_factor(self):
        assert shard_imbalance([]) == 1.0
        assert shard_imbalance([2.0, 2.0]) == 1.0
        assert shard_imbalance([1.0, 3.0]) == 1.5

    def test_add_shard_dimension_sorts_names(self):
        result = run_sharded_scan(_plan(1)).result
        snapshot = {"counters": {"z.last": 1}, "gauges": {}}
        merged = add_shard_dimension(snapshot, [(3, result)], 16)
        names = list(merged["counters"])
        assert names == sorted(names)
        assert "shard.slice03.probes" in merged["counters"]
        # The input snapshot is not mutated.
        assert "shard.slice03.probes" not in snapshot["counters"]


# --------------------------------------------------------------------- #
# Fork/spawn: merge + render of sharded snapshots (satellite 4)
# --------------------------------------------------------------------- #

def _available_methods():
    have = multiprocessing.get_all_start_methods()
    return [m for m in ("fork", "spawn") if m in have]


class TestStartMethods:
    @pytest.mark.parametrize("start_method", _available_methods())
    def test_snapshot_merges_and_renders(self, start_method):
        view = ShardProgressView(slices=16, workers=2, interval=0.001,
                                 stream=io.StringIO())
        outcome = run_sharded_scan(
            _plan(2, collect_metrics=True, heartbeat_interval=0.5),
            progress=view, start_method=start_method)
        snapshot = outcome.metrics_snapshot
        assert deterministic_snapshot(snapshot) == deterministic_snapshot(
            run_sharded_scan(_plan(1, collect_metrics=True))
            .metrics_snapshot)
        rows = shard_breakdown_rows(snapshot)
        assert sorted(rows) == list(range(16))
        table = render_shard_breakdown(snapshot)
        assert "per-shard breakdown" in table
        assert "imbalance factor" in table
        assert view.lines_emitted >= 1
        assert view.slices_done == 16

    def test_unknown_start_method_rejected(self):
        with pytest.raises(ValueError, match="unavailable"):
            run_sharded_scan(_plan(2), start_method="no-such-method")


# --------------------------------------------------------------------- #
# Sequential heartbeats + merged forest end to end
# --------------------------------------------------------------------- #

class TestEndToEnd:
    def test_sequential_heartbeats_feed_view_directly(self):
        view = ShardProgressView(slices=16, workers=1, interval=1000.0,
                                 stream=io.StringIO())
        outcome = run_sharded_scan(_plan(1, heartbeat_interval=0.5),
                                   progress=view)
        assert view.heartbeats_seen > 0
        assert view.slices_done == 16
        assert view.probes_done == outcome.result.probes_sent

    def test_heartbeats_do_not_change_results(self):
        base = run_sharded_scan(_plan(1))
        beating = run_sharded_scan(
            _plan(1, heartbeat_interval=0.5),
            progress=ShardProgressView(slices=16, interval=1000.0,
                                       stream=io.StringIO()))
        assert base.result.fingerprint() == beating.result.fingerprint()

    def test_merged_forest_invariant_in_worker_count(self):
        texts = {}
        for shards in (1, 4):
            outcome = run_sharded_scan(_plan(shards, collect_trace=True))
            events = [json.loads(line)
                      for line in outcome.trace_payload.splitlines()]
            validate_trace(events)
            roots = [e for e in events if e.get("ev") == "begin"
                     and e.get("parent") == 0]
            assert len(roots) == 16
            assert [e["slice"] for e in roots] == list(range(16))
            texts[shards] = deterministic_trace(events)
        assert texts[1] == texts[4]


# --------------------------------------------------------------------- #
# Per-slice pcap paths
# --------------------------------------------------------------------- #

class TestSlicePcapPath:
    def test_suffix_forms(self):
        assert slice_pcap_path("out.pcap", 0, 16) == "out.slice00.pcap"
        assert slice_pcap_path("out.pcap", 15, 16) == "out.slice15.pcap"
        assert slice_pcap_path("cap", 3, 16) == "cap.slice03.pcap"
        assert slice_pcap_path("a/b.pcap", 5, 128) == "a/b.slice005.pcap"

    def test_sharded_run_writes_per_slice_captures(self, tmp_path):
        base = tmp_path / "cap.pcap"
        outcome = run_sharded_scan(_plan(2, pcap_base=str(base)))
        assert outcome.pcap_paths == \
            [str(tmp_path / f"cap.slice{i:02d}.pcap") for i in range(16)]
        sizes = [tmp_path.joinpath(f"cap.slice{i:02d}.pcap").stat().st_size
                 for i in range(16)]
        assert all(size > 0 for size in sizes)
