"""The shard worker-init contract (see repro.core.sharding's docstring).

The parent builds the Topology once; ``fork`` workers inherit it
copy-on-write, ``spawn`` workers rebuild it from the picklable
TopologyConfig.  Both paths must serve the *same* topology, and workers
must never perturb it — all mutable per-scan state lives in each slice's
own SimulatedNetwork.
"""

import pickle

from repro.core import sharding
from repro.core.scanner import ScannerOptions, create_scanner
from repro.core.sharding import ShardPlan, build_slice_targets
from repro.simnet.config import TopologyConfig
from repro.simnet.network import SimulatedNetwork
from repro.simnet.topology import Topology

_CONFIG = TopologyConfig(num_prefixes=64, seed=5)


def _plan(**overrides) -> ShardPlan:
    settings = dict(tool="flashroute-16", topology=_CONFIG)
    settings.update(overrides)
    return ShardPlan(**settings)


class TestPicklability:
    def test_topology_config_round_trips(self):
        clone = pickle.loads(pickle.dumps(_CONFIG))
        assert clone == _CONFIG

    def test_plan_round_trips_with_config(self):
        plan = _plan(shards=4, loss=0.1, events_format="jsonl")
        clone = pickle.loads(pickle.dumps(plan))
        assert clone == plan
        assert clone.topology == _CONFIG


class TestDeterministicRebuild:
    def test_rebuild_from_config_is_identical(self):
        """A spawn worker's rebuilt topology equals the parent's."""
        a, b = Topology(_CONFIG), Topology(_CONFIG)
        assert list(a.scanned_prefixes()) == list(b.scanned_prefixes())
        prefixes = list(a.scanned_prefixes())[:8]
        for prefix in prefixes:
            dst = (prefix << 8) | 0x1D
            assert a.true_route(dst) == b.true_route(dst)
            assert a.destination_distance(dst) == \
                b.destination_distance(dst)

    def test_rebuilt_topology_scans_identically(self):
        """End to end: a scan over the rebuilt topology fingerprints the
        same as one over the original."""
        fingerprints = []
        for topology in (Topology(_CONFIG), Topology(_CONFIG)):
            network = SimulatedNetwork(topology)
            scanner = create_scanner("flashroute-16", ScannerOptions())
            fingerprints.append(scanner.scan(network).fingerprint())
        assert fingerprints[0] == fingerprints[1]


class TestWorkerInit:
    def test_init_is_idempotent_per_plan(self, monkeypatch):
        monkeypatch.setattr(sharding, "_WORKER", {})
        plan = _plan()
        sharding._worker_init(plan, [])
        first = sharding._WORKER["topology"]
        sharding._worker_init(plan, [])
        assert sharding._WORKER["topology"] is first

    def test_init_rebuilds_for_a_new_plan(self, monkeypatch):
        monkeypatch.setattr(sharding, "_WORKER", {})
        sharding._worker_init(_plan(), [])
        first = sharding._WORKER["topology"]
        other = _plan(topology=TopologyConfig(num_prefixes=32, seed=5))
        sharding._worker_init(other, [])
        assert sharding._WORKER["topology"] is not first
        assert sharding._WORKER["topology"].num_prefixes == 32


class TestSharedReadOnlyTopology:
    def test_concurrent_networks_do_not_perturb_each_other(self):
        """Two slices sharing one Topology behave exactly as they do on
        private copies — the workers-never-mutate-topology contract."""
        plan = _plan()
        shared = Topology(_CONFIG)
        per_slice = build_slice_targets(shared, plan)

        def run_slice(topology, index):
            payload = sharding._execute_slice(plan, topology,
                                              per_slice[index], index)
            return payload["result"]

        # Private topologies: the reference behavior.
        private = [run_slice(Topology(_CONFIG), index)
                   for index in (0, 1)]
        # Shared topology, interleaved slices: must match exactly.
        assert run_slice(shared, 0) == private[0]
        assert run_slice(shared, 1) == private[1]
        # And again after both ran — nothing accumulated in the topology.
        assert run_slice(shared, 0) == private[0]
