"""Pcap writer/reader and the capturing network proxy."""

import io
import struct

import pytest

from repro.core.config import FlashRouteConfig
from repro.core.prober import FlashRoute
from repro.net.packets import IPv4Header, ProbeHeader, PROTO_TCP, PROTO_UDP
from repro.net.pcap import PcapError, PcapRecord, PcapWriter, read_pcap
from repro.simnet.capture import CapturingNetwork, response_wire_bytes
from repro.simnet.network import SimulatedNetwork


class TestPcapFormat:
    def test_round_trip(self):
        buffer = io.BytesIO()
        writer = PcapWriter(buffer)
        writer.write(1.5, b"\x45" + b"\x00" * 19)
        writer.write(2.25, b"\x45" + b"\xFF" * 27)
        buffer.seek(0)
        records = list(read_pcap(buffer))
        assert len(records) == 2
        assert records[0].timestamp == pytest.approx(1.5)
        assert records[1].timestamp == pytest.approx(2.25)
        assert len(records[1].data) == 28

    def test_count(self):
        buffer = io.BytesIO()
        writer = PcapWriter(buffer)
        for i in range(5):
            writer.write(float(i), b"\x45" * 20)
        assert writer.count == 5

    def test_global_header_fields(self):
        buffer = io.BytesIO()
        PcapWriter(buffer)
        header = buffer.getvalue()
        magic, major, minor = struct.unpack("<IHH", header[:8])
        assert magic == 0xA1B2C3D4
        assert (major, minor) == (2, 4)
        linktype = struct.unpack("<I", header[20:24])[0]
        assert linktype == 101  # LINKTYPE_RAW

    def test_rejects_negative_timestamp(self):
        writer = PcapWriter(io.BytesIO())
        with pytest.raises(PcapError):
            writer.write(-1.0, b"\x45" * 20)

    def test_rejects_bad_magic(self):
        with pytest.raises(PcapError):
            list(read_pcap(io.BytesIO(b"\x00" * 24)))

    def test_rejects_truncated_header(self):
        with pytest.raises(PcapError):
            list(read_pcap(io.BytesIO(b"\x00" * 4)))

    def test_rejects_truncated_record(self):
        buffer = io.BytesIO()
        writer = PcapWriter(buffer)
        writer.write(0.0, b"\x45" * 20)
        data = buffer.getvalue()[:-5]
        with pytest.raises(PcapError):
            list(read_pcap(io.BytesIO(data)))

    def test_microsecond_rounding_carry(self):
        buffer = io.BytesIO()
        writer = PcapWriter(buffer)
        writer.write(0.9999999, b"\x45" * 20)
        buffer.seek(0)
        (record,) = read_pcap(buffer)
        assert record.timestamp == pytest.approx(1.0)


class TestResponseWire:
    def test_rst_bytes_are_tcp(self):
        from repro.net.icmp import IcmpResponse, ResponseKind

        quoted = ProbeHeader(src=1, dst=2, ttl=3, ipid=4, proto=PROTO_TCP,
                             src_port=4000, dst_port=80, tcp_seq=777)
        response = IcmpResponse(kind=ResponseKind.TCP_RST, responder=2,
                                quoted=quoted, arrival_time=0.0,
                                quoted_residual_ttl=3)
        wire = response_wire_bytes(response, vantage=1)
        outer = IPv4Header.unpack(wire)
        assert outer.proto == PROTO_TCP
        assert outer.src == 2

    def test_icmp_bytes_parse(self):
        from repro.net.icmp import (IcmpResponse, ResponseKind,
                                    unpack_icmp_error)

        quoted = ProbeHeader(src=1, dst=2, ttl=3, ipid=4, src_port=4000)
        response = IcmpResponse(kind=ResponseKind.TTL_EXCEEDED, responder=9,
                                quoted=quoted, arrival_time=0.0,
                                quoted_residual_ttl=3)
        wire = response_wire_bytes(response, vantage=1)
        parsed = unpack_icmp_error(wire)
        assert parsed.responder == 9
        assert parsed.quoted.dst == 2


class TestCapturingNetwork:
    def test_scan_through_capture(self, tiny_topology, tiny_targets,
                                  tmp_path):
        path = tmp_path / "scan.pcap"
        with open(path, "wb") as handle:
            network = CapturingNetwork(SimulatedNetwork(tiny_topology),
                                       handle)
            result = FlashRoute(FlashRouteConfig(preprobe="none")).scan(
                network, targets=tiny_targets)
            captured = network.packets_captured
        assert captured == result.probes_sent + result.responses \
            + result.mismatched_quotes

        from repro.net.pcap import load_pcap
        records = load_pcap(str(path))
        assert len(records) == captured
        # Every record is a parseable IPv4 packet.
        for record in records[:50]:
            IPv4Header.unpack(record.data)

    def test_capture_preserves_probe_fields(self, tiny_topology,
                                            tiny_targets, tmp_path):
        path = tmp_path / "one.pcap"
        dst = next(iter(tiny_targets.values()))
        with open(path, "wb") as handle:
            network = CapturingNetwork(SimulatedNetwork(tiny_topology),
                                       handle)
            network.send_probe(dst, 1, 0.5, 4242, ipid=0xBEEF,
                               udp_length=30)
        from repro.net.pcap import load_pcap
        records = load_pcap(str(path))
        probe = ProbeHeader.unpack(records[0].data)
        assert probe.dst == dst
        assert probe.ipid == 0xBEEF
        assert probe.udp_length == 30
        assert records[0].timestamp == pytest.approx(0.5)

    def test_proxy_forwards_attributes(self, tiny_topology):
        network = CapturingNetwork(SimulatedNetwork(tiny_topology),
                                   io.BytesIO())
        assert network.topology is tiny_topology
        assert network.probes_sent == 0
