"""Equivalence and property tests for the flat route cache.

The cache is only allowed to exist because it is provably
behavior-preserving; these tests are the proof obligations:

* ``RouteCache.hop_at`` agrees with ``Topology.hop_at`` over randomized
  ``(dst, ttl, flow, epoch)`` sweeps, including flap epochs, LB diamonds,
  out-of-space destinations and out-of-range TTLs;
* cached and uncached networks answer identical probe streams with
  *identical* response objects (rate limiter included);
* full FlashRoute and Yarrp scans produce identical :class:`ScanResult`
  fields either way, batched ring walk and all.
"""

from __future__ import annotations

import random

import pytest

from conftest import first_prefix_with
from repro.baselines.yarrp import Yarrp, YarrpConfig
from repro.core.config import FlashRouteConfig, PreprobeMode
from repro.core.prober import FlashRoute
from repro.net.packets import PROTO_TCP, PROTO_UDP
from repro.simnet.network import SimulatedNetwork
from repro.simnet.routecache import ROUTE_CACHE_TTLS, RouteCache
from repro.simnet.topology import Topology


def _hop_key(hop):
    return (hop.kind, hop.iface, hop.residual_ttl, hop.dest_depth)


def _result_fields(result):
    """Every observable field of a ScanResult, for exact comparison."""
    return {
        "tool": result.tool,
        "num_targets": result.num_targets,
        "routes": result.routes,
        "dest_distance": result.dest_distance,
        "targets": result.targets,
        "probes_sent": result.probes_sent,
        "preprobe_probes": result.preprobe_probes,
        "responses": result.responses,
        "mismatched_quotes": result.mismatched_quotes,
        "skipped_probes": result.skipped_probes,
        "duration": result.duration,
        "rounds": result.rounds,
        "aborted": result.aborted,
        "ttl_probe_histogram": dict(result.ttl_probe_histogram),
        "response_kinds": dict(result.response_kinds),
        "rtt_sum_ms": result.rtt_sum_ms,
        "rtt_count": result.rtt_count,
    }


class TestHopAtEquivalence:
    def test_randomized_sweep(self, small_topology: Topology):
        cache = RouteCache(small_topology)
        rng = random.Random(0xCAFE)
        base = small_topology.base_prefix
        for _ in range(4000):
            dst = ((base + rng.randrange(small_topology.num_prefixes)) << 8
                   ) | rng.randrange(256)
            ttl = rng.randrange(0, 40)
            flow = rng.randrange(0, 1 << 16)
            epoch = rng.randrange(0, 4)
            expected = small_topology.hop_at(dst, ttl, flow=flow, epoch=epoch)
            got = cache.hop_at(dst, ttl, flow=flow, epoch=epoch)
            assert _hop_key(got) == _hop_key(expected), \
                f"dst={dst:#x} ttl={ttl} flow={flow} epoch={epoch}"
        assert cache.hits > 0 and cache.misses > 0

    def test_out_of_space_and_extreme_ttls(self, small_topology: Topology):
        cache = RouteCache(small_topology)
        outside = (small_topology.base_prefix - 10) << 8
        inside = (small_topology.base_prefix << 8) | 5
        for dst, ttl in [(outside, 5), (inside, 0), (inside, -3),
                         (inside, ROUTE_CACHE_TTLS + 1),
                         (inside, ROUTE_CACHE_TTLS + 20)]:
            assert _hop_key(cache.hop_at(dst, ttl)) == \
                _hop_key(small_topology.hop_at(dst, ttl))

    def test_flap_epochs_invalidate_by_key(self, small_topology: Topology):
        prefix = first_prefix_with(small_topology,
                                   lambda record, stub: record.flap)
        dst = (prefix << 8) | 9
        cache = RouteCache(small_topology)
        for epoch in (0, 1, 2, 3):
            for ttl in range(1, 33):
                assert _hop_key(cache.hop_at(dst, ttl, epoch=epoch)) == \
                    _hop_key(small_topology.hop_at(dst, ttl, epoch=epoch))
        # A flappy destination owns exactly two entries (even/odd shift);
        # nothing was flushed to serve four epochs.
        assert len(cache) == 2

    def test_flow_classes_collapse_without_diamonds(
            self, small_topology: Topology):
        prefix = first_prefix_with(
            small_topology,
            lambda record, stub: not record.flap
            and all(token >= 0 for token in stub.transit))
        dst = (prefix << 8) | 17
        cache = RouteCache(small_topology)
        for flow in (0, 1, 7, 65535):
            cache.hop_at(dst, 5, flow=flow)
        assert len(cache) == 1  # one shared entry: flow can't matter


class TestSendProbeEquivalence:
    @pytest.mark.parametrize("proto", [PROTO_UDP, PROTO_TCP])
    def test_identical_probe_streams(self, small_topology: Topology, proto):
        cached = SimulatedNetwork(small_topology)
        uncached = SimulatedNetwork(small_topology, use_route_cache=False)
        assert cached.route_cache is not None
        assert uncached.route_cache is None

        rng = random.Random(0xBEEF)
        base = small_topology.base_prefix
        now = 0.0
        for _ in range(3000):
            dst = ((base + rng.randrange(small_topology.num_prefixes)) << 8
                   ) | rng.randrange(256)
            ttl = rng.randrange(1, 33)
            src_port = rng.randrange(1024, 65536)
            a = cached.send_probe(dst, ttl, now, src_port, proto=proto)
            b = uncached.send_probe(dst, ttl, now, src_port, proto=proto)
            assert a == b, f"dst={dst:#x} ttl={ttl} t={now}"
            now += 1e-5
        assert cached.probes_sent == uncached.probes_sent
        assert cached.responses_generated == uncached.responses_generated
        assert cached.rewritten_responses == uncached.rewritten_responses
        assert cached.rate_limiter.dropped == uncached.rate_limiter.dropped

    def test_single_hint_skips_build_not_behavior(
            self, small_topology: Topology):
        hinted = SimulatedNetwork(small_topology)
        plain = SimulatedNetwork(small_topology)
        base = small_topology.base_prefix
        now = 0.0
        for host in (1, 9, 200):
            dst = (base << 8) | host
            for ttl in (32, 5):
                a = hinted.send_probe(dst, ttl, now, 33434, single=True)
                b = plain.send_probe(dst, ttl, now, 33434)
                assert a == b
                now += 1e-4
        # The hint resolved every miss directly: no tables were built...
        assert hinted.route_cache.stats()["udp_tables"] == 0
        assert hinted.probes_sent == plain.probes_sent
        # ...but an existing table still serves hinted probes.
        dst = (base << 8) | 1
        hinted.send_probe(dst, 5, now, 33434)
        tables = hinted.route_cache.stats()["udp_tables"]
        assert tables > 0
        hinted.send_probe(dst, 6, now, 33434, single=True)
        assert hinted.route_cache.stats()["udp_tables"] == tables

    def test_batch_equals_scalar(self, small_topology: Topology):
        batch_net = SimulatedNetwork(small_topology)
        scalar_net = SimulatedNetwork(small_topology)
        rng = random.Random(0xD00D)
        base = small_topology.base_prefix
        probes = []
        now = 0.0
        for _ in range(500):
            dst = ((base + rng.randrange(small_topology.num_prefixes)) << 8
                   ) | rng.randrange(256)
            probes.append((dst, rng.randrange(1, 33), now,
                           rng.randrange(1024, 65536), 0, 8))
            now += 1e-5
        batched = batch_net.send_probes(probes)
        scalar = [scalar_net.send_probe(dst, ttl, t, port, ipid=ipid,
                                        udp_length=length)
                  for dst, ttl, t, port, ipid, length in probes]
        assert batched == scalar
        assert batch_net.probes_sent == scalar_net.probes_sent


class TestScanEquivalence:
    def test_flashroute_scan_identical(self, tiny_topology: Topology,
                                       tiny_targets):
        results = []
        for use_cache in (True, False):
            network = SimulatedNetwork(tiny_topology,
                                       use_route_cache=use_cache)
            scanner = FlashRoute(FlashRouteConfig(route_cache=use_cache))
            results.append(scanner.scan(network, targets=tiny_targets))
        assert _result_fields(results[0]) == _result_fields(results[1])

    def test_flashroute_config_flag_disables_cache(
            self, tiny_topology: Topology, tiny_targets):
        network = SimulatedNetwork(tiny_topology)
        result = FlashRoute(FlashRouteConfig(route_cache=False)).scan(
            network, targets=tiny_targets)
        assert result.probes_sent > 0
        # The scan ran uncached, and execute() restored the fast path after.
        assert network.route_cache is not None
        assert network.route_cache.hits == 0

    @pytest.mark.parametrize("config_name", ["yarrp_16", "yarrp_32"])
    def test_yarrp_scan_identical(self, tiny_topology: Topology,
                                  tiny_targets, config_name):
        results = []
        for use_cache in (True, False):
            network = SimulatedNetwork(tiny_topology,
                                       use_route_cache=use_cache)
            config = getattr(YarrpConfig, config_name)()
            results.append(Yarrp(config).scan(network, targets=tiny_targets))
        assert _result_fields(results[0]) == _result_fields(results[1])

    def test_set_route_cache_enabled_round_trip(
            self, small_topology: Topology):
        network = SimulatedNetwork(small_topology)
        assert network.set_route_cache_enabled(False) is True
        assert network.route_cache is None
        assert network.set_route_cache_enabled(False) is False
        assert network.set_route_cache_enabled(True) is False
        assert network.route_cache is not None

    def test_cache_survives_reset(self, small_topology: Topology):
        network = SimulatedNetwork(small_topology)
        dst = (small_topology.base_prefix << 8) | 1
        network.send_probe(dst, 5, 0.0, 33434)
        tables = network.route_cache.stats()["udp_tables"]
        # The probe built its outcome table (a stable prefix registers it
        # under both epoch parities).
        assert tables in (1, 2)
        network.reset()
        assert network.probes_sent == 0
        # Warm across scans: reset clears dynamic state, not the cache.
        assert network.route_cache.stats()["udp_tables"] == tables
