"""The repro.api facade: requests, engine/sessions, CLI equivalence.

The headline pin: the one-shot ``scan`` CLI rewired through
``Engine.open_session()`` must produce output **byte-identical** to the
pre-facade CLI for the same seed.  The golden sha256 fingerprints below
were captured from the direct-construction CLI immediately before the
refactor; these tests re-run the same invocations through the facade
and compare.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json

import pytest

from repro import api
from repro.cli import main
from repro.core.scanner import create_scanner, ScannerOptions
from repro.core.sharding import ShardPlan

# Captured from the pre-refactor CLI (direct Topology/SimulatedNetwork/
# FlashRoute construction), not regenerated since.
GOLDEN_A_JSON = \
    "4b558c41438fe1df0fc1de893a80de4644aa0b657cf0bedd246d1e9f61707188"
GOLDEN_A_EVENTS = \
    "437ee2cbf6dbe2e4b5d5e91b147115750e05aedd28ee06ce72289af8c256d781"
GOLDEN_A_METRICS = \
    "144a4146e92cbdee2716854f146845eb4d67716d3d92e7941d6cd9fe380128af"
GOLDEN_A_SUMMARY = "FlashRoute-16: interfaces=269 probes=1,004 time=16:47.00"
GOLDEN_B_JSON = \
    "e0f35117d39528a7ea1162784e69ed91c373dc98c1393bef1e63743b53813bb5"
GOLDEN_B_STDOUT = \
    "2a931c7e7c8e94e69a8ac265f474d02d5efa6a70fef9cdaa5f6af4d123950ba9"


def _sha(path) -> str:
    return hashlib.sha256(path.read_bytes()).hexdigest()


class TestGoldenEquivalence:
    """Post-refactor CLI output is byte-identical to the pre-facade CLI."""

    def test_scan_outputs_match_pre_refactor_cli(self, tmp_path, capsys):
        out = tmp_path / "a.json"
        events = tmp_path / "a_events.jsonl"
        metrics = tmp_path / "a_metrics.json"
        assert main(["scan", "--tool", "flashroute-16", "--prefixes", "96",
                     "--seed", "20201027", "--output", str(out),
                     "--events", str(events),
                     "--metrics-out", str(metrics)]) == 0
        assert capsys.readouterr().out.splitlines()[0] == GOLDEN_A_SUMMARY
        assert _sha(out) == GOLDEN_A_JSON
        assert _sha(events) == GOLDEN_A_EVENTS
        from repro.obs.metrics import deterministic_snapshot, load_snapshot

        snap = deterministic_snapshot(load_snapshot(str(metrics)))
        digest = hashlib.sha256(json.dumps(
            snap, sort_keys=True, separators=(",", ":")).encode()).hexdigest()
        assert digest == GOLDEN_A_METRICS

    def test_faulted_json_scan_matches_pre_refactor_cli(self, tmp_path,
                                                        capsys):
        out = tmp_path / "b.json"
        assert main(["scan", "--tool", "yarrp-32-udp-sim", "--prefixes",
                     "64", "--seed", "11", "--loss", "0.05", "--fault-seed",
                     "7", "--retries", "1", "--json",
                     "--output", str(out)]) == 0
        stdout = capsys.readouterr().out
        assert _sha(out) == GOLDEN_B_JSON
        assert hashlib.sha256(stdout.encode()).hexdigest() == GOLDEN_B_STDOUT


class TestScanRequest:
    def test_round_trips_through_dict(self):
        request = api.ScanRequest(tool="yarrp-16", prefixes=128, seed=7,
                                  split_ttl=12, gap_limit=3,
                                  preprobe="none", rate=250.0, loss=0.1,
                                  blackout=0.05, fault_seed=3,
                                  route_cache=False, retries=2,
                                  adaptive_rate=True, shards=4,
                                  shard_index=1, shard_slices=32)
        payload = request.to_dict()
        assert json.loads(json.dumps(payload)) == payload  # JSON-able
        assert api.ScanRequest.from_dict(payload) == request
        assert api.ScanRequest.from_dict(payload, complete=True) == request

    def test_defaults_round_trip(self):
        request = api.ScanRequest()
        assert api.ScanRequest.from_dict(request.to_dict(),
                                         complete=True) == request

    def test_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown scan request field"):
            api.ScanRequest.from_dict({"tool": "flashroute-16",
                                       "granularity": 24})

    def test_complete_rejects_missing_fields(self):
        payload = api.ScanRequest().to_dict()
        del payload["fault_seed"]
        api.ScanRequest.from_dict(payload)  # partial is fine by default
        with pytest.raises(ValueError, match="missing field"):
            api.ScanRequest.from_dict(payload, complete=True)

    def test_validation(self):
        with pytest.raises(ValueError):
            api.ScanRequest(prefixes=0)
        with pytest.raises(ValueError):
            api.ScanRequest(loss=1.0)
        with pytest.raises(ValueError):
            api.ScanRequest(rate=-1.0)
        with pytest.raises(ValueError):
            api.ScanRequest(retries=-1)

    def test_shard_plan_from_request_matches_hand_built(self):
        request = api.ScanRequest(tool="yarrp-32", prefixes=64, seed=5,
                                  loss=0.02, fault_seed=9, shards=2,
                                  shard_slices=8, retries=1)
        plan = ShardPlan.from_request(request, collect_metrics=True,
                                      events_format="jsonl")
        expected = ShardPlan(
            tool="yarrp-32", topology=request.topology_config(),
            shards=2, shard_index=None, slices=8,
            loss=0.02, fault_seed=9, retries=1,
            collect_metrics=True, events_format="jsonl")
        assert plan == expected


class TestTraceRequest:
    def test_parse_dotted_and_int(self):
        a = api.TraceRequest.parse({"destination": "20.0.0.7", "flow": 3})
        b = api.TraceRequest.parse({"destination": (20 << 24) + 7,
                                    "flow": 3})
        assert a == b
        assert a.key == ((20 << 24) + 7, 3)

    def test_parse_rejects_malformed(self):
        with pytest.raises(ValueError, match="needs a 'destination'"):
            api.TraceRequest.parse({"flow": 1})
        with pytest.raises(ValueError, match="not an IPv4 address"):
            api.TraceRequest.parse({"destination": "999.1.2.3"})
        with pytest.raises(ValueError, match="unknown trace request"):
            api.TraceRequest.parse({"destination": "20.0.0.7", "ttl": 4})
        with pytest.raises(ValueError, match="must be an integer"):
            api.TraceRequest.parse({"destination": "20.0.0.7",
                                    "flow": "three"})
        with pytest.raises(ValueError, match="JSON object"):
            api.TraceRequest.parse(["20.0.0.7"])

    def test_field_validation(self):
        with pytest.raises(ValueError):
            api.TraceRequest(destination=-1)
        with pytest.raises(ValueError):
            api.TraceRequest(destination=1, flow=70000)
        with pytest.raises(ValueError):
            api.TraceRequest(destination=1, max_ttl=0)


def _engine(prefixes=64, seed=20201027):
    return api.Engine.from_request(api.ScanRequest(prefixes=prefixes,
                                                   seed=seed))


class TestEngineSessions:
    def test_scan_session_matches_registry_path(self):
        request = api.ScanRequest(tool="flashroute-16", prefixes=64)
        via_api = api.scan(request)
        from repro.simnet import SimulatedNetwork, Topology

        network = SimulatedNetwork(Topology(request.topology_config()),
                                   faults=request.fault_model())
        via_registry = create_scanner(
            "flashroute-16", ScannerOptions()).scan(network)
        assert via_api.fingerprint() == via_registry.fingerprint()
        assert via_api.probes_sent == via_registry.probes_sent

    def test_scan_overrides_build_request(self):
        result = api.scan(tool="yarrp-16", prefixes=64, seed=3)
        again = api.scan(api.ScanRequest(tool="yarrp-16", prefixes=64,
                                         seed=3))
        assert result.fingerprint() == again.fingerprint()

    def test_sharded_scan_dispatch_invariant_in_worker_count(self):
        # A request with shards set routes through the sharded executor;
        # the merged result must not depend on the worker count (PR 6's
        # contract — the slice decomposition, not the shard count, is
        # what defines the output).
        request = api.ScanRequest(tool="flashroute-16", prefixes=64,
                                  shard_slices=4)
        one = api.scan(dataclasses.replace(request, shards=1))
        two = api.scan(dataclasses.replace(request, shards=2))
        assert two.fingerprint() == one.fingerprint()

    def test_trace_session_streams_manifold_hops(self):
        engine = _engine()
        request = api.TraceRequest.parse({"destination": "20.0.0.7",
                                          "flow": 2})
        session = engine.open_session(request)
        hops = list(session.stream())
        assert hops, "expected at least one hop"
        for hop in hops:
            assert set(hop) == {"ip", "ttl", "hop_probecount", "path",
                                "source", "destination", "rtt_ms"}
            assert hop["destination"] == "20.0.0.7"
            assert hop["path"] == 2
        ttls = [hop["ttl"] for hop in hops]
        assert ttls == sorted(ttls)
        result = session.result()
        assert result["hop_count"] == len(hops)
        assert result["hops"] == hops
        assert result["probes"] >= len(hops)

    def test_trace_is_deterministic_per_engine(self):
        request = api.TraceRequest.parse({"destination": "20.0.0.9"})
        first = _engine().open_session(request).run()
        second = _engine().open_session(request).run()
        assert first == second

    def test_trace_outside_space_rejected(self):
        engine = _engine(prefixes=64)
        with pytest.raises(ValueError, match="outside the simulated"):
            engine.open_session(api.TraceRequest.parse(
                {"destination": "99.0.0.1"}))

    def test_trace_needs_engine(self):
        with pytest.raises(ValueError, match="explicit engine"):
            api.open_session(api.TraceRequest(destination=(20 << 24) + 1))

    def test_open_session_type_checked(self):
        with pytest.raises(TypeError):
            _engine().open_session({"destination": "20.0.0.1"})

    def test_sessions_share_warm_route_cache(self):
        engine = _engine()
        request = api.ScanRequest(tool="flashroute-16", prefixes=64)
        first = engine.open_session(request)
        assert first.network.route_cache is engine.network.route_cache
        second = engine.open_session(request)
        assert second.network.route_cache is first.network.route_cache


class TestDeprecation:
    """Direct engine construction warns; sanctioned paths stay silent."""

    def test_direct_flashroute_construction_warns(self):
        from repro.core.prober import FlashRoute

        with pytest.warns(DeprecationWarning,
                          match="constructing FlashRoute directly"):
            FlashRoute()

    def test_direct_baseline_construction_warns(self):
        from repro.baselines.yarrp import Yarrp, YarrpConfig
        from repro.baselines.scamper import Scamper
        from repro.baselines.traceroute import TracerouteScanner

        with pytest.warns(DeprecationWarning, match="Yarrp"):
            Yarrp(YarrpConfig.yarrp_32())
        with pytest.warns(DeprecationWarning, match="Scamper"):
            Scamper()
        with pytest.warns(DeprecationWarning, match="TracerouteScanner"):
            TracerouteScanner()

    @pytest.mark.filterwarnings(
        "error:constructing \\w+ directly:DeprecationWarning")
    def test_sanctioned_paths_do_not_warn(self):
        # With the deprecation escalated to an error, every blessed
        # construction path must stay silent.
        create_scanner("flashroute-16", ScannerOptions())
        api.flashroute()
        api.yarrp()
        api.scamper()
        api.traceroute_scanner()
        api.scan(tool="traceroute", prefixes=4)

    @pytest.mark.filterwarnings(
        "error:constructing \\w+ directly:DeprecationWarning")
    def test_discovery_mode_is_sanctioned(self):
        from repro.core.discovery import run_discovery_optimized
        from repro.simnet import SimulatedNetwork, Topology, TopologyConfig

        network = SimulatedNetwork(Topology(TopologyConfig(num_prefixes=8)))
        run_discovery_optimized(network, extra_scans=1)


class TestCliServeBench:
    def test_serve_bench_writes_report(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        assert main(["serve-bench", "--prefixes", "32", "--clients", "20",
                     "--keys", "4", "--output", str(out)]) == 0
        report = json.loads(out.read_text())
        assert report["clients"] == 20
        assert report["latency_ms"]["p99"] >= report["latency_ms"]["p50"]
        total = sum(report["outcomes"].values())
        assert total == 20
        stdout = capsys.readouterr().out
        assert "serve-bench: 20 clients" in stdout
