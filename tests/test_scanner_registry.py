"""Scanner protocol + registry (repro.core.scanner)."""

import pytest

from repro.baselines.scamper import Scamper
from repro.baselines.traceroute import TracerouteScanner
from repro.baselines.yarrp import Yarrp
from repro.core import FlashRoute, ScanResult
from repro.core.scanner import (
    Scanner,
    ScannerOptions,
    create_scanner,
    register_scanner,
    scanner_names,
    unregister_scanner,
)
from repro.simnet import SimulatedNetwork, Topology, TopologyConfig


@pytest.fixture(scope="module")
def topology():
    return Topology(TopologyConfig(num_prefixes=64, seed=7))


EXPECTED_TYPES = {
    "flashroute-16": FlashRoute,
    "flashroute-32": FlashRoute,
    "yarrp-16": Yarrp,
    "yarrp-32": Yarrp,
    "scamper-16": Scamper,
    "traceroute": TracerouteScanner,
    "yarrp-32-udp-sim": FlashRoute,
}


class TestRegistry:
    def test_builtin_names(self):
        names = scanner_names()
        assert set(EXPECTED_TYPES) <= set(names)
        assert names == tuple(sorted(names))

    def test_create_builds_expected_types(self):
        for name, cls in EXPECTED_TYPES.items():
            scanner = create_scanner(name)
            assert isinstance(scanner, cls), name
            assert isinstance(scanner, Scanner), name

    def test_create_returns_fresh_instances(self):
        assert create_scanner("flashroute-16") is not \
            create_scanner("flashroute-16")

    def test_unknown_name_lists_known(self):
        with pytest.raises(KeyError, match="flashroute-16"):
            create_scanner("nmap")

    def test_decorator_registration_and_cleanup(self):
        @register_scanner("test-dummy")
        def _build(options):
            return FlashRoute()
        try:
            assert "test-dummy" in scanner_names()
            assert isinstance(create_scanner("test-dummy"), FlashRoute)
            with pytest.raises(ValueError, match="already registered"):
                register_scanner("test-dummy", lambda options: FlashRoute())
        finally:
            unregister_scanner("test-dummy")
        assert "test-dummy" not in scanner_names()

    def test_options_reach_the_config(self):
        scanner = create_scanner("flashroute-16", ScannerOptions(
            probing_rate=1234.0, split_ttl=12, gap_limit=3,
            preprobe="none", seed=99))
        config = scanner.config
        assert config.probing_rate == 1234.0
        assert config.split_ttl == 12
        assert config.gap_limit == 3
        assert config.preprobe.value == "none"
        assert config.seed == 99

    def test_default_options_match_paper_configs(self):
        fr16 = create_scanner("flashroute-16").config
        assert (fr16.split_ttl, fr16.gap_limit) == (16, 5)
        assert fr16.preprobe.value == "hitlist"
        y16 = create_scanner("yarrp-16").config
        assert (y16.fill_start, y16.max_ttl) == (16, 32)
        udp_sim = create_scanner("yarrp-32-udp-sim").config
        assert (udp_sim.split_ttl, udp_sim.gap_limit) == (32, 0)
        assert udp_sim.preprobe.value == "none"


class TestEveryScannerScans:
    @pytest.mark.parametrize("name", sorted(EXPECTED_TYPES))
    def test_scan_produces_result(self, topology, name):
        network = SimulatedNetwork(topology)
        result = create_scanner(name).scan(network)
        assert isinstance(result, ScanResult)
        assert result.probes_sent > 0
        assert result.interface_count() > 0


class TestTracerouteScanner:
    def test_aggregates_per_destination_traces(self, topology):
        network = SimulatedNetwork(topology)
        result = TracerouteScanner().scan(network)
        assert result.tool == "Traceroute"
        assert result.num_targets == topology.num_prefixes
        assert result.responses > 0
        assert result.duration > 0
        # Sequential traceroute costs far more probes per target than
        # FlashRoute against the same topology.
        network.reset()
        flash = FlashRoute().scan(network)
        assert result.probes_per_target() > flash.probes_per_target()

    def test_rate_maps_to_probe_gap(self):
        scanner = create_scanner("traceroute",
                                 ScannerOptions(probing_rate=50.0))
        assert scanner.inter_probe_gap == pytest.approx(0.02)
