"""Unit tests for the RFC 1071 checksum and the checksum-derived ports."""

import struct

import pytest
from hypothesis import given, strategies as st

from repro.net.checksum import (
    addr_checksum,
    flow_source_port,
    internet_checksum,
    verify_checksum,
)


class TestInternetChecksum:
    def test_rfc1071_example(self):
        # The classic RFC 1071 worked example.
        data = bytes([0x00, 0x01, 0xF2, 0x03, 0xF4, 0xF5, 0xF6, 0xF7])
        assert internet_checksum(data) == 0xFFFF - 0xDDF2

    def test_zero_data(self):
        assert internet_checksum(b"\x00\x00") == 0xFFFF

    def test_odd_length_is_padded(self):
        assert internet_checksum(b"\xFF") == internet_checksum(b"\xFF\x00")

    def test_checksum_in_range(self):
        assert 0 <= internet_checksum(b"hello world") <= 0xFFFF

    @given(st.binary(min_size=0, max_size=128))
    def test_data_plus_checksum_verifies(self, data):
        checksum = internet_checksum(data)
        if len(data) % 2:
            data += b"\x00"
        assert verify_checksum(data + struct.pack("!H", checksum))

    def test_verify_detects_corruption(self):
        data = b"\x12\x34\x56\x78"
        checksum = internet_checksum(data)
        packet = bytearray(data + struct.pack("!H", checksum))
        packet[0] ^= 0xFF
        assert not verify_checksum(bytes(packet))


class TestAddrChecksum:
    def test_deterministic(self):
        assert addr_checksum(0x0A000001) == addr_checksum(0x0A000001)

    def test_distinguishes_most_addresses(self):
        assert addr_checksum(0x0A000001) != addr_checksum(0x0A000002)

    def test_never_privileged(self):
        for addr in range(0, 2**32, 2**27):
            assert addr_checksum(addr) >= 1024

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_valid_port_range(self, addr):
        assert 1024 <= addr_checksum(addr) <= 65535


class TestFlowSourcePort:
    def test_offset_zero_matches_base(self):
        assert flow_source_port(0x14000001, 0) == addr_checksum(0x14000001)

    def test_offsets_yield_distinct_flows(self):
        base = 0x14000001
        ports = {flow_source_port(base, i) for i in range(8)}
        assert len(ports) == 8

    def test_offset_increments_port(self):
        base = flow_source_port(0x14000001, 0)
        assert flow_source_port(0x14000001, 1) in (base + 1, 1024)

    @given(st.integers(min_value=0, max_value=2**32 - 1),
           st.integers(min_value=0, max_value=1000))
    def test_always_unprivileged(self, addr, offset):
        assert 1024 <= flow_source_port(addr, offset) <= 65535

    def test_wraps_within_window(self):
        # Pushing the port past 65535 must wrap back into [1024, 65535].
        addr = 0
        big_offset = 2 * (65536 - 1024)
        assert flow_source_port(addr, big_offset) == flow_source_port(addr, 0)
