"""Command-line interface."""

import json

import pytest

from repro.cli import main


class TestScanCommand:
    def test_default_scan(self, capsys):
        assert main(["scan", "--prefixes", "128", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "FlashRoute-16" in out
        assert "interfaces=" in out

    def test_json_output(self, capsys):
        assert main(["scan", "--prefixes", "128", "--seed", "3",
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["tool"] == "FlashRoute-16"
        assert payload["probes"] > 0
        assert "scan_time_text" in payload

    @pytest.mark.parametrize("tool", ["flashroute-32", "yarrp-32",
                                      "scamper-16", "yarrp-32-udp-sim"])
    def test_other_tools(self, capsys, tool):
        assert main(["scan", "--tool", tool, "--prefixes", "128",
                     "--seed", "3"]) == 0
        assert "interfaces=" in capsys.readouterr().out

    def test_every_registered_tool_scans(self, capsys):
        """The --tool choices come from the registry; each one must run."""
        from repro.core.scanner import scanner_names
        for tool in scanner_names():
            assert main(["scan", "--tool", tool, "--prefixes", "64",
                         "--seed", "3"]) == 0
            assert "interfaces=" in capsys.readouterr().out

    def test_overrides(self, capsys):
        assert main(["scan", "--prefixes", "128", "--seed", "3",
                     "--split-ttl", "8", "--gap-limit", "2",
                     "--preprobe", "none", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["probes"] > 0

    def test_rejects_unknown_tool(self):
        with pytest.raises(SystemExit):
            main(["scan", "--tool", "nmap"])

    def test_loss_scan(self, capsys):
        assert main(["scan", "--prefixes", "128", "--seed", "3",
                     "--loss", "0.05", "--fault-seed", "7", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["probes"] > 0
        assert "holes" in payload
        assert "duplicate_responses" in payload


class TestScanValidation:
    @pytest.mark.parametrize("argv", [
        ["scan", "--prefixes", "0"],
        ["scan", "--prefixes", "-5"],
        ["scan", "--rate", "-100"],
        ["scan", "--rate", "0"],
        ["scan", "--gap-limit", "0"],
        ["scan", "--gap-limit", "-1"],
        ["scan", "--loss", "1.5"],
        ["scan", "--loss", "-0.1"],
        ["scan", "--blackout", "2"],
    ])
    def test_rejects_invalid_numbers(self, capsys, argv):
        with pytest.raises(SystemExit) as exc_info:
            main(argv)
        assert exc_info.value.code == 2  # argparse usage error
        assert "error" in capsys.readouterr().err


class TestExperimentCommand:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table3" in out
        assert "fig8" in out

    def test_run_table1(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_PREFIXES", "128")
        monkeypatch.setenv("REPRO_BENCH_SEED", "3")
        assert main(["experiment", "table1"]) == 0
        assert "Redundancy" in capsys.readouterr().out

    def test_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            main(["experiment", "table99"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestScanOutputs:
    def test_output_json(self, tmp_path, capsys):
        path = tmp_path / "scan.json"
        assert main(["scan", "--prefixes", "128", "--seed", "3",
                     "--output", str(path)]) == 0
        from repro.core.output import load_json
        result = load_json(str(path))
        assert result.probes_sent > 0

    def test_output_csv(self, tmp_path, capsys):
        path = tmp_path / "scan.csv"
        assert main(["scan", "--prefixes", "128", "--seed", "3",
                     "--output", str(path)]) == 0
        text = path.read_text()
        assert text.startswith("prefix,target,ttl,interface,is_destination")
        assert text.count("\n") > 10

    def test_output_rejects_unknown_extension(self, tmp_path):
        import pytest as _pytest
        with _pytest.raises(SystemExit):
            main(["scan", "--prefixes", "128", "--seed", "3",
                  "--output", str(tmp_path / "scan.xml")])

    def test_pcap_capture(self, tmp_path, capsys):
        path = tmp_path / "scan.pcap"
        assert main(["scan", "--prefixes", "128", "--seed", "3",
                     "--pcap", str(path)]) == 0
        from repro.net.pcap import load_pcap
        records = load_pcap(str(path))
        assert len(records) > 100

    def test_holes_experiment(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_PREFIXES", "128")
        monkeypatch.setenv("REPRO_BENCH_SEED", "3")
        assert main(["experiment", "holes"]) == 0
        assert "route completeness" in capsys.readouterr().out

    def test_loss_sweep_experiment(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_PREFIXES", "64")
        monkeypatch.setenv("REPRO_BENCH_SEED", "3")
        assert main(["experiment", "loss-sweep"]) == 0
        out = capsys.readouterr().out
        assert "Loss sweep" in out
        assert "Gap limit" in out


class TestTelemetryFlags:
    def test_metrics_out_and_trace(self, tmp_path, capsys):
        metrics = tmp_path / "m.json"
        trace = tmp_path / "t.jsonl"
        assert main(["scan", "--prefixes", "128", "--seed", "3",
                     "--metrics-out", str(metrics),
                     "--trace", str(trace)]) == 0
        out = capsys.readouterr().out
        assert f"metrics: {metrics}" in out
        assert f"trace: {trace}" in out
        from repro.obs import load_snapshot, read_trace, validate_trace
        snapshot = load_snapshot(str(metrics))
        assert snapshot["counters"]["scan.probes.total"] > 0
        assert snapshot["counters"]["simnet.probes_sent"] > 0
        assert "written_unix" in snapshot["wall"]
        events = read_trace(str(trace))
        validate_trace(events)
        assert any(e.get("span") == "round" for e in events)

    def test_same_seed_metrics_byte_identical(self, tmp_path, capsys):
        import json as _json
        from repro.obs import deterministic_snapshot, load_snapshot

        paths = [tmp_path / "a.json", tmp_path / "b.json"]
        for path in paths:
            assert main(["scan", "--prefixes", "128", "--seed", "3",
                         "--metrics-out", str(path)]) == 0
            capsys.readouterr()
        views = [_json.dumps(deterministic_snapshot(load_snapshot(str(p))),
                             sort_keys=True)
                 for p in paths]
        assert views[0] == views[1]

    def test_progress_goes_to_stderr(self, capsys):
        assert main(["scan", "--prefixes", "128", "--seed", "3",
                     "--progress", "5"]) == 0
        captured = capsys.readouterr()
        assert "[progress] t=" in captured.err
        assert "[progress]" not in captured.out

    def test_progress_rejects_zero_interval(self, capsys):
        with pytest.raises(SystemExit):
            main(["scan", "--prefixes", "128", "--progress", "0"])

    def test_loss_run_prints_cache_and_fault_counters(self, capsys):
        assert main(["scan", "--prefixes", "128", "--seed", "3",
                     "--loss", "0.05", "--fault-seed", "7"]) == 0
        out = capsys.readouterr().out
        assert "cache: hits=" in out
        assert "faults: probes_lost=" in out

    def test_loss_json_includes_simnet_columns(self, capsys):
        assert main(["scan", "--prefixes", "128", "--seed", "3",
                     "--loss", "0.05", "--fault-seed", "7", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "cache_hits" in payload
        assert "probes_lost" in payload

    def test_plain_json_has_no_simnet_columns(self, capsys):
        """Without fault flags the JSON row keeps its pre-telemetry shape."""
        assert main(["scan", "--prefixes", "128", "--seed", "3",
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "cache_hits" not in payload
        assert "probes_lost" not in payload


class TestMetricsReportCommand:
    def _write(self, tmp_path, name, seed):
        path = tmp_path / name
        assert main(["scan", "--prefixes", "128", "--seed", str(seed),
                     "--metrics-out", str(path)]) == 0
        return str(path)

    def test_summary(self, tmp_path, capsys):
        path = self._write(tmp_path, "m.json", 3)
        capsys.readouterr()
        assert main(["metrics-report", path]) == 0
        out = capsys.readouterr().out
        assert "snapshot summary" in out
        assert "scan.probes.total" in out

    def test_diff(self, tmp_path, capsys):
        a = self._write(tmp_path, "a.json", 3)
        b = self._write(tmp_path, "b.json", 4)
        capsys.readouterr()
        assert main(["metrics-report", a, b, "--changed-only"]) == 0
        out = capsys.readouterr().out
        assert "snapshot diff" in out
        assert "Delta" in out


class TestEventsFlags:
    def test_events_jsonl(self, tmp_path, capsys):
        log = tmp_path / "ev.jsonl"
        assert main(["scan", "--prefixes", "128", "--seed", "3",
                     "--events", str(log)]) == 0
        assert f"events: {log}" in capsys.readouterr().out
        from repro.obs import read_events, validate_events
        events = read_events(str(log))
        validate_events(events)
        assert any(e.get("ev") == "probe_sent" for e in events)

    def test_events_binary(self, tmp_path, capsys):
        log = tmp_path / "ev.bin"
        assert main(["scan", "--prefixes", "128", "--seed", "3",
                     "--events", str(log)]) == 0
        capsys.readouterr()
        from repro.obs.events import BINARY_MAGIC
        assert log.read_bytes().startswith(BINARY_MAGIC)

    @pytest.mark.parametrize("argv", [
        ["scan", "--prefixes", "128", "--events-sample", "1.5"],
        ["scan", "--prefixes", "128", "--events-sample", "-0.1"],
        ["scan", "--prefixes", "128", "--events-ring", "0"],
    ])
    def test_rejects_invalid_event_knobs(self, capsys, argv):
        with pytest.raises(SystemExit):
            main(argv)
        assert "error" in capsys.readouterr().err


class TestComposedOutputs:
    def test_pcap_trace_metrics_events_compose(self, tmp_path, capsys):
        """One scan may emit pcap+trace+metrics+events without changing
        the ScanResult — including simnet cache counters under --loss."""
        base = ["scan", "--prefixes", "128", "--seed", "3",
                "--loss", "0.05", "--fault-seed", "7", "--json"]
        assert main(base) == 0
        bare = json.loads(capsys.readouterr().out)

        pcap = tmp_path / "s.pcap"
        trace = tmp_path / "t.jsonl"
        metrics = tmp_path / "m.json"
        events = tmp_path / "e.jsonl"
        assert main(base + ["--pcap", str(pcap), "--trace", str(trace),
                            "--metrics-out", str(metrics),
                            "--events", str(events)]) == 0
        full = json.loads(capsys.readouterr().out)

        assert full == bare
        for path in (pcap, trace, metrics, events):
            assert path.stat().st_size > 0


class TestScanDiffCommand:
    def _events(self, tmp_path, name, extra=()):
        path = tmp_path / name
        assert main(["scan", "--prefixes", "128", "--seed", "3",
                     "--events", str(path), *extra]) == 0
        return str(path)

    def test_clean_vs_clean(self, tmp_path, capsys):
        a = self._events(tmp_path, "a.jsonl")
        b = self._events(tmp_path, "b.jsonl")
        capsys.readouterr()
        assert main(["scan-diff", a, b]) == 0
        assert "no divergences" in capsys.readouterr().out

    def test_clean_vs_lossy_attributes_causes(self, tmp_path, capsys):
        a = self._events(tmp_path, "a.jsonl")
        b = self._events(tmp_path, "b.jsonl",
                         ["--loss", "0.02", "--fault-seed", "11"])
        capsys.readouterr()
        assert main(["scan-diff", a, b, "--loss", "0.02",
                     "--fault-seed", "11", "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert rows
        assert all(r["cause"] != "unattributed" for r in rows)

    def test_malformed_input_exits_2(self, tmp_path, capsys):
        junk = tmp_path / "junk.jsonl"
        junk.write_text("not an event log\n")
        good = self._events(tmp_path, "a.jsonl")
        capsys.readouterr()
        assert main(["scan-diff", str(junk), good]) == 2
        assert "scan-diff:" in capsys.readouterr().err

    def test_metrics_report_malformed_exits_2(self, tmp_path, capsys):
        junk = tmp_path / "junk.json"
        junk.write_text("{\"not\": \"a snapshot\"}")
        assert main(["metrics-report", str(junk)]) == 2
        assert "metrics-report:" in capsys.readouterr().err


class TestShardFlagValidation:
    @pytest.mark.parametrize("argv", [
        ["scan", "--prefixes", "128", "--shards", "0"],
        ["scan", "--prefixes", "128", "--shards", "-2"],
        ["scan", "--prefixes", "128", "--shards", "two"],
        ["scan", "--prefixes", "128", "--shard-slices", "0"],
        ["scan", "--prefixes", "128", "--shards", "2",
         "--shard-index", "-1"],
    ])
    def test_rejects_invalid_numbers(self, capsys, argv):
        with pytest.raises(SystemExit) as exc_info:
            main(argv)
        assert exc_info.value.code == 2
        assert "error" in capsys.readouterr().err

    def test_shard_index_requires_shards(self, capsys):
        with pytest.raises(SystemExit) as exc_info:
            main(["scan", "--prefixes", "128", "--shard-index", "0"])
        assert exc_info.value.code == 2
        assert "--shard-index requires --shards" in \
            capsys.readouterr().err

    def test_shard_index_must_be_below_shards(self, capsys):
        with pytest.raises(SystemExit) as exc_info:
            main(["scan", "--prefixes", "128", "--shards", "2",
                  "--shard-index", "2"])
        assert exc_info.value.code == 2
        assert "--shard-index must be < --shards" in \
            capsys.readouterr().err

    def test_shards_capped_by_slices(self, capsys):
        with pytest.raises(SystemExit) as exc_info:
            main(["scan", "--prefixes", "128", "--shards", "8",
                  "--shard-slices", "4"])
        assert exc_info.value.code == 2
        assert "--shard-slices" in capsys.readouterr().err

    def test_trace_composes_with_shards(self, tmp_path, capsys):
        """PR 9 lifted the old refusal: --trace under --shards writes a
        merged, validate_trace-clean multi-root forest."""
        from repro.obs.trace import read_trace, validate_trace
        trace = tmp_path / "trace.jsonl"
        assert main(["scan", "--prefixes", "96", "--seed", "3",
                     "--shards", "2", "--trace", str(trace)]) == 0
        assert "merged span forest" in capsys.readouterr().out
        validate_trace(read_trace(str(trace)))

    def test_pcap_composes_with_shards(self, tmp_path, capsys):
        """PR 9 lifted the old refusal: --pcap under --shards writes one
        suffixed capture per slice plus a merge note."""
        assert main(["scan", "--prefixes", "96", "--seed", "3",
                     "--shards", "2", "--pcap",
                     str(tmp_path / "out.pcap")]) == 0
        out = capsys.readouterr().out
        assert "16 per-slice captures" in out
        assert "merge externally" in out
        captures = sorted(tmp_path.glob("out.slice*.pcap"))
        assert len(captures) == 16
        assert all(path.stat().st_size > 0 for path in captures)


class TestShardedScanCLI:
    def _scan(self, tmp_path, tag, extra):
        out = tmp_path / f"{tag}.json"
        events = tmp_path / f"{tag}.jsonl"
        metrics = tmp_path / f"{tag}-metrics.json"
        assert main(["scan", "--prefixes", "96", "--seed", "3",
                     "--loss", "0.02", "--fault-seed", "7",
                     "--output", str(out), "--events", str(events),
                     "--metrics-out", str(metrics), *extra]) == 0
        return out, events, metrics

    def test_merged_files_match_single_worker_bytes(self, tmp_path,
                                                    capsys):
        from repro.obs.metrics import deterministic_snapshot, \
            load_snapshot
        single = self._scan(tmp_path, "single", ["--shards", "1"])
        capsys.readouterr()
        sharded = self._scan(tmp_path, "sharded", ["--shards", "4"])
        assert "shards: 4 workers, 16 slices" in capsys.readouterr().out
        assert sharded[0].read_bytes() == single[0].read_bytes()
        assert sharded[1].read_bytes() == single[1].read_bytes()
        assert deterministic_snapshot(load_snapshot(str(sharded[2]))) \
            == deterministic_snapshot(load_snapshot(str(single[2])))

    def test_interrupt_and_resume_finish_byte_identically(self, tmp_path,
                                                          capsys):
        full = self._scan(tmp_path, "full", ["--shards", "2"])
        capsys.readouterr()
        ckpt = tmp_path / "scan.ckpt"
        argv = ["scan", "--prefixes", "96", "--seed", "3",
                "--loss", "0.02", "--fault-seed", "7",
                "--output", str(tmp_path / "part.json"),
                "--events", str(tmp_path / "part.jsonl"),
                "--metrics-out", str(tmp_path / "part-metrics.json"),
                "--shards", "2", "--checkpoint", str(ckpt)]
        assert main(argv + ["--interrupt-after-round", "5"]) == 130
        assert "interrupted: checkpoint written" in \
            capsys.readouterr().err
        # Resume replays the scan-shaping flags (including --shards) from
        # the checkpoint; only the output destinations are re-specified.
        assert main(["scan", "--resume", str(ckpt),
                     "--output", str(tmp_path / "part.json"),
                     "--events", str(tmp_path / "part.jsonl"),
                     "--metrics-out",
                     str(tmp_path / "part-metrics.json")]) == 0
        out = capsys.readouterr().out
        assert "(5 resumed)" in out
        assert (tmp_path / "part.json").read_bytes() == \
            full[0].read_bytes()
        assert (tmp_path / "part.jsonl").read_bytes() == \
            full[1].read_bytes()

    def test_shard_index_runs_one_worker_standalone(self, capsys):
        assert main(["scan", "--prefixes", "96", "--seed", "3",
                     "--shards", "2", "--shard-index", "1"]) == 0
        assert "shards: worker 1 of 2, 16 slices" in \
            capsys.readouterr().out

    def test_sharded_progress_honors_interval(self, capsys):
        """--progress SECONDS throttles the sharded view (it used to
        print once per completed slice regardless of the interval)."""
        assert main(["scan", "--prefixes", "96", "--seed", "3",
                     "--shards", "1", "--progress", "10000"]) == 0
        lines = [line for line in capsys.readouterr().err.splitlines()
                 if line.startswith("[shard-progress]")]
        # First activity renders once, the huge interval suppresses the
        # rest, and finish() always emits the final done line.
        assert len(lines) == 2, lines
        assert lines[-1].startswith("[shard-progress] done slices=16/16")
        assert "agg_pps=" in lines[-1]

    def test_sharded_trace_deterministic_across_worker_counts(
            self, tmp_path, capsys):
        from repro.obs.trace import deterministic_trace, read_trace
        t1 = tmp_path / "t1.jsonl"
        t4 = tmp_path / "t4.jsonl"
        assert main(["scan", "--prefixes", "96", "--seed", "3",
                     "--shards", "1", "--trace", str(t1)]) == 0
        assert main(["scan", "--prefixes", "96", "--seed", "3",
                     "--shards", "4", "--trace", str(t4)]) == 0
        assert deterministic_trace(read_trace(str(t1))) == \
            deterministic_trace(read_trace(str(t4)))
