"""Fine-granularity scanning and destination-varying discovery (§5.4)."""

import pytest

from repro.core.config import FlashRouteConfig
from repro.core.discovery import run_discovery_optimized
from repro.core.prober import FlashRoute
from repro.core.targets import hitlist_targets, random_targets
from repro.simnet.network import SimulatedNetwork


class TestFineTargets:
    def test_one_target_per_block(self, tiny_topology):
        targets = random_targets(tiny_topology, seed=1, granularity=26)
        assert len(targets) == 4 * tiny_topology.num_prefixes
        for block, addr in targets.items():
            assert addr >> 6 == block

    def test_targets_avoid_network_and_broadcast(self, tiny_topology):
        for granularity in (24, 26, 28, 30):
            targets = random_targets(tiny_topology, seed=1,
                                     granularity=granularity)
            for addr in targets.values():
                assert 1 <= addr & 0xFF <= 254

    def test_blocks_tile_each_prefix(self, tiny_topology):
        targets = random_targets(tiny_topology, seed=1, granularity=28)
        prefixes = {block >> 4 for block in targets}
        assert prefixes == set(tiny_topology.scanned_prefixes())

    def test_hitlist_inherits_per_24_pick(self, tiny_topology):
        coarse = hitlist_targets(tiny_topology)
        fine = hitlist_targets(tiny_topology, granularity=26)
        assert len(fine) == 4 * len(coarse)
        for block, addr in fine.items():
            assert addr == coarse[block >> 2]

    def test_rejects_bad_granularity(self, tiny_topology):
        with pytest.raises(ValueError):
            random_targets(tiny_topology, 1, granularity=23)
        with pytest.raises(ValueError):
            random_targets(tiny_topology, 1, granularity=31)

    def test_config_rejects_bad_granularity(self):
        with pytest.raises(ValueError):
            FlashRouteConfig(granularity=33)


class TestFineScan:
    @pytest.fixture(scope="class")
    def fine_scan(self, tiny_topology):
        config = FlashRouteConfig.flashroute_32(granularity=26)
        return FlashRoute(config).scan(SimulatedNetwork(tiny_topology),
                                       tool_name="fine-26")

    @pytest.fixture(scope="class")
    def coarse_scan(self, tiny_topology):
        return FlashRoute(FlashRouteConfig.flashroute_32()).scan(
            SimulatedNetwork(tiny_topology), tool_name="coarse-24")

    def test_scan_completes(self, fine_scan, tiny_topology):
        assert not fine_scan.aborted
        assert fine_scan.num_targets == 4 * tiny_topology.num_prefixes
        assert fine_scan.granularity == 26

    def test_routes_keyed_by_block(self, fine_scan, tiny_topology):
        base_block = tiny_topology.base_prefix * 4
        top_block = base_block + 4 * tiny_topology.num_prefixes
        for block in fine_scan.routes:
            assert base_block <= block < top_block

    def test_hops_are_real_interfaces(self, fine_scan, tiny_topology):
        assert fine_scan.interfaces() <= set(tiny_topology.iface_addrs)

    def test_finds_more_interior_interfaces(self, fine_scan, coarse_scan):
        """Multiple targets per /24 reach the interiors behind more
        distinct last-hop routers (the point of the §5.4 proposal)."""
        assert fine_scan.interface_count() >= coarse_scan.interface_count()

    def test_costs_more_probes(self, fine_scan, coarse_scan):
        assert fine_scan.probes_sent > 2 * coarse_scan.probes_sent

    def test_dest_distances_true(self, fine_scan, tiny_topology):
        for block, measured in fine_scan.dest_distance.items():
            target = fine_scan.targets[block]
            truth = {tiny_topology.destination_distance(target, epoch=epoch)
                     for epoch in (0, 1)}
            assert measured in truth


class TestVaryingDestinationDiscovery:
    def test_extras_trace_fresh_targets(self, tiny_topology, tiny_targets):
        result = run_discovery_optimized(SimulatedNetwork(tiny_topology),
                                         extra_scans=2, targets=tiny_targets,
                                         vary_destination=True)
        for extra in result.extras:
            assert extra.targets != tiny_targets

    def test_varying_destination_finds_at_least_fixed(self, tiny_topology,
                                                      tiny_targets):
        fixed = run_discovery_optimized(SimulatedNetwork(tiny_topology),
                                        extra_scans=2, targets=tiny_targets,
                                        vary_destination=False)
        varied = run_discovery_optimized(SimulatedNetwork(tiny_topology),
                                         extra_scans=2, targets=tiny_targets,
                                         vary_destination=True)
        # New addresses cross new last-hop routers; fixed ones cannot.
        assert len(varied.interfaces()) >= len(fixed.interfaces())
