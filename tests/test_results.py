"""ScanResult bookkeeping and derived views."""

import pytest

from repro.core.results import (
    ScanResult,
    format_scan_time,
    union_interfaces,
)


class TestFormatScanTime:
    def test_minutes(self):
        assert format_scan_time(17 * 60 + 16.94) == "17:16.94"

    def test_hours(self):
        assert format_scan_time(3600 + 15.21) == "1:00:15.21"

    def test_paper_scamper_value(self):
        assert format_scan_time(3 * 3600 + 43 * 60 + 27.56) == "3:43:27.56"

    def test_zero(self):
        assert format_scan_time(0) == "0:00.00"

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            format_scan_time(-1)


class TestScanResult:
    def test_add_hop_and_interfaces(self):
        result = ScanResult(tool="t")
        result.add_hop(100, 3, 0x0A)
        result.add_hop(100, 4, 0x0B)
        result.add_hop(101, 3, 0x0A)
        assert result.interfaces() == {0x0A, 0x0B}
        assert result.interface_count() == 2

    def test_route_sorted(self):
        result = ScanResult(tool="t")
        result.add_hop(100, 5, 0x0C)
        result.add_hop(100, 2, 0x0A)
        assert result.route(100) == [(2, 0x0A), (5, 0x0C)]

    def test_record_destination_keeps_minimum(self):
        result = ScanResult(tool="t")
        result.record_destination(100, 14)
        result.record_destination(100, 12)
        result.record_destination(100, 20)
        assert result.dest_distance[100] == 12

    def test_route_length_prefers_destination_distance(self):
        result = ScanResult(tool="t")
        result.add_hop(100, 9, 0x0A)
        result.record_destination(100, 11)
        assert result.route_length(100) == 11

    def test_route_length_falls_back_to_deepest_hop(self):
        result = ScanResult(tool="t")
        result.add_hop(100, 9, 0x0A)
        result.add_hop(100, 4, 0x0B)
        assert result.route_length(100) == 9

    def test_route_length_none_when_silent(self):
        assert ScanResult(tool="t").route_length(5) is None

    def test_rtt_accounting(self):
        result = ScanResult(tool="t")
        assert result.mean_rtt_ms() is None
        result.add_rtt(10.0)
        result.add_rtt(30.0)
        assert result.mean_rtt_ms() == pytest.approx(20.0)

    def test_probes_per_target(self):
        result = ScanResult(tool="t", num_targets=4)
        result.probes_sent = 40
        assert result.probes_per_target() == pytest.approx(10.0)

    def test_probes_per_target_no_targets(self):
        assert ScanResult(tool="t").probes_per_target() == 0.0

    def test_summary_mentions_tool(self):
        result = ScanResult(tool="FlashRoute-16")
        assert "FlashRoute-16" in result.summary()

    def test_as_row_keys(self):
        row = ScanResult(tool="t").as_row()
        # The first five are the original keys and must stay stable; the
        # rest are the derived/fault columns added for experiment drivers.
        assert set(row) == {"tool", "interfaces", "probes", "scan_time",
                            "scan_time_text", "probes_per_target",
                            "responses", "mean_rtt_ms", "holes",
                            "duplicate_responses"}

    def test_as_row_derived_values(self):
        result = ScanResult(tool="t", num_targets=2)
        result.probes_sent = 10
        result.responses = 6
        result.add_rtt(10.0)
        result.add_rtt(20.0)
        row = result.as_row()
        assert row["probes_per_target"] == pytest.approx(5.0)
        assert row["responses"] == 6
        assert row["mean_rtt_ms"] == pytest.approx(15.0)
        assert row["holes"] == 0
        assert row["duplicate_responses"] == 0

    def test_route_holes(self):
        result = ScanResult(tool="t")
        # Route with hops at 2, 5 and destination at 7: TTLs 3, 4 and 6
        # are holes; nothing outside the observed span counts.
        result.add_hop(1, 2, 100)
        result.add_hop(1, 5, 101)
        result.record_destination(1, 7)
        assert result.route_holes() == 3

    def test_route_holes_without_destination(self):
        result = ScanResult(tool="t")
        result.add_hop(1, 3, 100)
        result.add_hop(1, 6, 101)
        assert result.route_holes() == 2

    def test_route_holes_contiguous_route(self):
        result = ScanResult(tool="t")
        for ttl in range(1, 6):
            result.add_hop(1, ttl, 100 + ttl)
        result.record_destination(1, 6)
        assert result.route_holes() == 0


class TestUnionInterfaces:
    def test_union(self):
        a = ScanResult(tool="a")
        a.add_hop(1, 1, 10)
        b = ScanResult(tool="b")
        b.add_hop(1, 1, 11)
        b.add_hop(2, 2, 10)
        assert union_interfaces([a, b]) == frozenset({10, 11})

    def test_empty(self):
        assert union_interfaces([]) == frozenset()
