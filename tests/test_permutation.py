"""Permutation generators: bijectivity is the whole contract."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.permutation import (
    FeistelPermutation,
    MultiplicativeCycle,
    PermutationError,
)


class TestFeistel:
    @pytest.mark.parametrize("n", [1, 2, 3, 16, 17, 100, 1000, 4096, 5000])
    def test_is_bijection(self, n):
        perm = FeistelPermutation(n, seed=42)
        values = [perm[i] for i in range(n)]
        assert sorted(values) == list(range(n))

    def test_deterministic_in_seed(self):
        a = FeistelPermutation(1000, seed=1)
        b = FeistelPermutation(1000, seed=1)
        assert [a[i] for i in range(50)] == [b[i] for i in range(50)]

    def test_different_seeds_differ(self):
        a = [FeistelPermutation(1000, seed=1)[i] for i in range(1000)]
        b = [FeistelPermutation(1000, seed=2)[i] for i in range(1000)]
        assert a != b

    def test_actually_shuffles(self):
        n = 4096
        perm = FeistelPermutation(n, seed=3)
        fixed_points = sum(1 for i in range(n) if perm[i] == i)
        # A uniform random permutation has ~1 expected fixed point.
        assert fixed_points < n // 100

    def test_iteration_matches_indexing(self):
        perm = FeistelPermutation(257, seed=9)
        assert list(perm) == [perm[i] for i in range(257)]

    def test_len(self):
        assert len(FeistelPermutation(12, seed=0)) == 12

    def test_rejects_empty_domain(self):
        with pytest.raises(PermutationError):
            FeistelPermutation(0, seed=0)

    def test_rejects_single_round(self):
        with pytest.raises(PermutationError):
            FeistelPermutation(10, seed=0, rounds=1)

    def test_index_out_of_range(self):
        perm = FeistelPermutation(10, seed=0)
        with pytest.raises(IndexError):
            perm[10]

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=1, max_value=2000),
           st.integers(min_value=0, max_value=2**31))
    def test_bijection_property(self, n, seed):
        perm = FeistelPermutation(n, seed=seed)
        assert sorted(perm[i] for i in range(n)) == list(range(n))


class TestMultiplicativeCycle:
    @pytest.mark.parametrize("n", [1, 2, 5, 31, 32, 100, 1024, 5000])
    def test_full_cycle_covers_domain(self, n):
        cycle = MultiplicativeCycle(n, seed=11)
        assert sorted(cycle) == list(range(n))

    def test_deterministic(self):
        a = list(MultiplicativeCycle(500, seed=4))
        b = list(MultiplicativeCycle(500, seed=4))
        assert a == b

    def test_seed_changes_order(self):
        assert list(MultiplicativeCycle(500, seed=4)) != \
            list(MultiplicativeCycle(500, seed=5))

    def test_not_sequential(self):
        values = list(MultiplicativeCycle(1000, seed=6))
        runs = sum(1 for a, b in zip(values, values[1:]) if b == a + 1)
        assert runs < 100

    def test_prime_exceeds_domain(self):
        cycle = MultiplicativeCycle(100, seed=1)
        assert cycle.p > 100

    def test_rejects_empty_domain(self):
        with pytest.raises(PermutationError):
            MultiplicativeCycle(0, seed=1)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=1, max_value=3000),
           st.integers(min_value=0, max_value=2**31))
    def test_cover_property(self, n, seed):
        assert sorted(MultiplicativeCycle(n, seed=seed)) == list(range(n))


class TestShardSlicing:
    """Shard iterators must partition the full cycle *exactly* — the
    property the sharded scanner's byte-stable merge rests on."""

    def test_iter_shard_partitions_emissions(self):
        cycle = MultiplicativeCycle(1000, seed=7)
        full = list(cycle)
        shards = [list(cycle.iter_shard(i, 4)) for i in range(4)]
        # Disjoint and union-complete over emission indexes.
        emissions = [e for shard in shards for e, _ in shard]
        assert sorted(emissions) == list(range(len(full)))
        # Interleaving by emission index reconstructs __iter__'s order.
        merged = sorted((pair for shard in shards for pair in shard))
        assert [value for _, value in merged] == full

    def test_iter_shard_stride_residues(self):
        cycle = MultiplicativeCycle(200, seed=3)
        for index in range(3):
            assert all(e % 3 == index
                       for e, _ in cycle.iter_shard(index, 3))

    def test_iter_shard_single_shard_is_full_walk(self):
        cycle = MultiplicativeCycle(500, seed=9)
        assert [v for _, v in cycle.iter_shard(0, 1)] == list(cycle)

    def test_iter_shard_deterministic(self):
        a = list(MultiplicativeCycle(700, seed=5).iter_shard(2, 4))
        b = list(MultiplicativeCycle(700, seed=5).iter_shard(2, 4))
        assert a == b

    def test_iter_shard_rejects_bad_args(self):
        cycle = MultiplicativeCycle(10, seed=1)
        with pytest.raises(PermutationError):
            list(cycle.iter_shard(0, 0))
        with pytest.raises(PermutationError):
            list(cycle.iter_shard(4, 4))
        with pytest.raises(PermutationError):
            list(cycle.iter_shard(-1, 4))

    def test_split_steps_partitions_walk(self):
        cycle = MultiplicativeCycle(1000, seed=13)
        ranges = cycle.split_steps(5)
        # Contiguous, disjoint, union-complete over the group walk.
        assert ranges[0][0] == 0
        assert ranges[-1][1] == cycle.p - 1
        for (_, stop), (first, _) in zip(ranges, ranges[1:]):
            assert stop == first
        replayed = [value for first, stop in ranges
                    for _, value in cycle.iter_steps(first, stop)]
        assert replayed == list(cycle)

    def test_split_steps_handles_more_shards_than_steps(self):
        cycle = MultiplicativeCycle(2, seed=1)
        ranges = cycle.split_steps(50)
        assert len(ranges) == 50
        replayed = [value for first, stop in ranges
                    for _, value in cycle.iter_steps(first, stop)]
        assert replayed == list(cycle)

    def test_split_steps_rejects_nonpositive(self):
        with pytest.raises(PermutationError):
            MultiplicativeCycle(10, seed=1).split_steps(0)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=1, max_value=2000),
           st.integers(min_value=0, max_value=2**31),
           st.integers(min_value=1, max_value=9))
    def test_shard_partition_property(self, n, seed, num_shards):
        cycle = MultiplicativeCycle(n, seed=seed)
        pairs = sorted(pair for index in range(num_shards)
                       for pair in cycle.iter_shard(index, num_shards))
        full = list(cycle)
        assert [e for e, _ in pairs] == list(range(len(full)))
        assert [v for _, v in pairs] == full

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=1, max_value=2000),
           st.integers(min_value=0, max_value=2**31),
           st.integers(min_value=1, max_value=9))
    def test_split_steps_partition_property(self, n, seed, num_shards):
        cycle = MultiplicativeCycle(n, seed=seed)
        replayed = [value for first, stop in cycle.split_steps(num_shards)
                    for _, value in cycle.iter_steps(first, stop)]
        assert replayed == list(cycle)
