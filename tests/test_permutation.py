"""Permutation generators: bijectivity is the whole contract."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.permutation import (
    FeistelPermutation,
    MultiplicativeCycle,
    PermutationError,
)


class TestFeistel:
    @pytest.mark.parametrize("n", [1, 2, 3, 16, 17, 100, 1000, 4096, 5000])
    def test_is_bijection(self, n):
        perm = FeistelPermutation(n, seed=42)
        values = [perm[i] for i in range(n)]
        assert sorted(values) == list(range(n))

    def test_deterministic_in_seed(self):
        a = FeistelPermutation(1000, seed=1)
        b = FeistelPermutation(1000, seed=1)
        assert [a[i] for i in range(50)] == [b[i] for i in range(50)]

    def test_different_seeds_differ(self):
        a = [FeistelPermutation(1000, seed=1)[i] for i in range(1000)]
        b = [FeistelPermutation(1000, seed=2)[i] for i in range(1000)]
        assert a != b

    def test_actually_shuffles(self):
        n = 4096
        perm = FeistelPermutation(n, seed=3)
        fixed_points = sum(1 for i in range(n) if perm[i] == i)
        # A uniform random permutation has ~1 expected fixed point.
        assert fixed_points < n // 100

    def test_iteration_matches_indexing(self):
        perm = FeistelPermutation(257, seed=9)
        assert list(perm) == [perm[i] for i in range(257)]

    def test_len(self):
        assert len(FeistelPermutation(12, seed=0)) == 12

    def test_rejects_empty_domain(self):
        with pytest.raises(PermutationError):
            FeistelPermutation(0, seed=0)

    def test_rejects_single_round(self):
        with pytest.raises(PermutationError):
            FeistelPermutation(10, seed=0, rounds=1)

    def test_index_out_of_range(self):
        perm = FeistelPermutation(10, seed=0)
        with pytest.raises(IndexError):
            perm[10]

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=1, max_value=2000),
           st.integers(min_value=0, max_value=2**31))
    def test_bijection_property(self, n, seed):
        perm = FeistelPermutation(n, seed=seed)
        assert sorted(perm[i] for i in range(n)) == list(range(n))


class TestMultiplicativeCycle:
    @pytest.mark.parametrize("n", [1, 2, 5, 31, 32, 100, 1024, 5000])
    def test_full_cycle_covers_domain(self, n):
        cycle = MultiplicativeCycle(n, seed=11)
        assert sorted(cycle) == list(range(n))

    def test_deterministic(self):
        a = list(MultiplicativeCycle(500, seed=4))
        b = list(MultiplicativeCycle(500, seed=4))
        assert a == b

    def test_seed_changes_order(self):
        assert list(MultiplicativeCycle(500, seed=4)) != \
            list(MultiplicativeCycle(500, seed=5))

    def test_not_sequential(self):
        values = list(MultiplicativeCycle(1000, seed=6))
        runs = sum(1 for a, b in zip(values, values[1:]) if b == a + 1)
        assert runs < 100

    def test_prime_exceeds_domain(self):
        cycle = MultiplicativeCycle(100, seed=1)
        assert cycle.p > 100

    def test_rejects_empty_domain(self):
        with pytest.raises(PermutationError):
            MultiplicativeCycle(0, seed=1)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=1, max_value=3000),
           st.integers(min_value=0, max_value=2**31))
    def test_cover_property(self, n, seed):
        assert sorted(MultiplicativeCycle(n, seed=seed)) == list(range(n))
