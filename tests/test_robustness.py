"""Seed-sweep robustness: the paper's orderings are properties of the
algorithms, not artifacts of one calibrated topology realization."""

import pytest

from repro.baselines.yarrp import Yarrp, YarrpConfig
from repro.core.config import FlashRouteConfig
from repro.core.prober import FlashRoute
from repro.core.targets import random_targets
from repro.simnet.config import TopologyConfig
from repro.simnet.network import SimulatedNetwork
from repro.simnet.topology import Topology

SEEDS = (101, 202, 303)


@pytest.fixture(scope="module", params=SEEDS)
def world(request):
    topology = Topology(TopologyConfig(num_prefixes=512, seed=request.param))
    return topology, random_targets(topology, seed=1)


@pytest.fixture(scope="module")
def fr16(world):
    topology, targets = world
    return FlashRoute(FlashRouteConfig.flashroute_16()).scan(
        SimulatedNetwork(topology), targets=targets)


@pytest.fixture(scope="module")
def yarrp32(world):
    topology, targets = world
    return Yarrp(YarrpConfig.yarrp_32()).scan(
        SimulatedNetwork(topology), targets=targets)


@pytest.fixture(scope="module")
def udp_sim(world):
    topology, targets = world
    return FlashRoute(FlashRouteConfig.yarrp32_udp_simulation()).scan(
        SimulatedNetwork(topology), targets=targets)


class TestOrderingsAcrossSeeds:
    def test_flashroute_wins_on_probes(self, fr16, yarrp32):
        assert fr16.probes_sent < 0.55 * yarrp32.probes_sent

    def test_flashroute_wins_on_time(self, fr16, yarrp32):
        assert fr16.duration < 0.55 * yarrp32.duration

    def test_interface_parity(self, fr16, yarrp32):
        # At 512 prefixes preprobing hints are scarce and deep stubs carry
        # a larger unique-interface share, so parity is looser than the
        # benchmark-scale assertion (>0.93 at 4096 prefixes).
        assert fr16.interface_count() > 0.8 * yarrp32.interface_count()

    def test_convergence_cost_bounded(self, fr16, udp_sim):
        assert fr16.interface_count() > 0.8 * udp_sim.interface_count()

    def test_yarrp16_loses_interfaces(self, world, yarrp32):
        topology, targets = world
        yarrp16 = Yarrp(YarrpConfig.yarrp_16()).scan(
            SimulatedNetwork(topology), targets=targets)
        assert yarrp16.interface_count() < 0.9 * yarrp32.interface_count()

    def test_redundancy_removal_always_saves(self, world):
        topology, targets = world
        on = FlashRoute(FlashRouteConfig(
            preprobe="none", redundancy_removal=True)).scan(
            SimulatedNetwork(topology), targets=targets)
        off = FlashRoute(FlashRouteConfig(
            preprobe="none", redundancy_removal=False)).scan(
            SimulatedNetwork(topology), targets=targets)
        assert on.probes_sent < 0.7 * off.probes_sent
        assert on.interface_count() > 0.9 * off.interface_count()

    def test_hitlist_bias_direction(self, world):
        topology, targets = world
        from repro.analysis.hitlist_bias import analyze_hitlist_bias
        from repro.core.targets import hitlist_targets

        exhaustive = FlashRouteConfig.yarrp32_udp_simulation()
        hit = FlashRoute(exhaustive).scan(
            SimulatedNetwork(topology), targets=hitlist_targets(topology))
        rand = FlashRoute(exhaustive).scan(
            SimulatedNetwork(topology), targets=targets)
        report = analyze_hitlist_bias(hit, rand)
        assert report.random_interfaces > report.hitlist_interfaces
        assert report.hitlist_responsive > report.random_responsive
        assert report.hitlist_on_random_routes > \
            report.random_on_hitlist_routes
