"""Cross-tool integration: the paper's headline claims hold on a small
simulated Internet."""

import pytest

from repro.baselines.scamper import Scamper, ScamperConfig
from repro.baselines.yarrp import Yarrp, YarrpConfig
from repro.core.config import FlashRouteConfig
from repro.core.prober import FlashRoute
from repro.core.targets import random_targets
from repro.simnet.config import TopologyConfig
from repro.simnet.network import SimulatedNetwork
from repro.simnet.topology import Topology


@pytest.fixture(scope="module")
def world():
    topology = Topology(TopologyConfig(num_prefixes=768, seed=42))
    targets = random_targets(topology, seed=1)
    return topology, targets


@pytest.fixture(scope="module")
def fr16(world):
    topology, targets = world
    return FlashRoute(FlashRouteConfig.flashroute_16()).scan(
        SimulatedNetwork(topology), targets=targets)


@pytest.fixture(scope="module")
def yarrp32(world):
    topology, targets = world
    return Yarrp(YarrpConfig.yarrp_32()).scan(
        SimulatedNetwork(topology), targets=targets)


@pytest.fixture(scope="module")
def udp_sim(world):
    topology, targets = world
    return FlashRoute(FlashRouteConfig.yarrp32_udp_simulation()).scan(
        SimulatedNetwork(topology), targets=targets)


class TestHeadlineClaims:
    def test_flashroute_uses_under_half_the_probes(self, fr16, yarrp32):
        """Abstract: 'uses less than 30% of probes ... of the previous
        state of the art' — we require < 50% on the small topology."""
        assert fr16.probes_sent < 0.5 * yarrp32.probes_sent

    def test_flashroute_is_at_least_twice_as_fast(self, fr16, yarrp32):
        assert fr16.duration < 0.5 * yarrp32.duration

    def test_interface_discovery_comparable(self, fr16, yarrp32):
        """Table 3: FlashRoute-16 finds marginally more interfaces than
        Yarrp-32 (TCP)."""
        assert fr16.interface_count() > 0.93 * yarrp32.interface_count()

    def test_convergence_cost_is_small(self, fr16, udp_sim):
        """§4.2.1: redundancy elimination misses only a few percent of the
        interfaces the exhaustive UDP scan discovers."""
        ratio = fr16.interface_count() / udp_sim.interface_count()
        assert 0.90 <= ratio <= 1.0

    def test_yarrp16_loses_interfaces(self, world, yarrp32):
        topology, targets = world
        yarrp16 = Yarrp(YarrpConfig.yarrp_16()).scan(
            SimulatedNetwork(topology), targets=targets)
        assert yarrp16.interface_count() < 0.9 * yarrp32.interface_count()
        assert yarrp16.probes_sent < yarrp32.probes_sent

    def test_scamper_more_probes_slightly_more_interfaces(self, world, fr16):
        topology, targets = world
        scamper = Scamper(ScamperConfig.scamper_16()).scan(
            SimulatedNetwork(topology), targets=targets)
        assert scamper.probes_sent > fr16.probes_sent
        assert scamper.interface_count() >= 0.98 * fr16.interface_count()


class TestMeasurementQuality:
    def test_measured_destination_distances_match_truth(self, world, fr16):
        topology, targets = world
        correct = wrong = 0
        for prefix, measured in fr16.dest_distance.items():
            truth = {topology.destination_distance(targets[prefix],
                                                   epoch=epoch)
                     for epoch in (0, 1)}
            truth.discard(None)
            if not truth:
                continue
            if measured in truth or any(abs(measured - t) <= 1
                                        for t in truth):
                correct += 1
            else:
                wrong += 1
        # Only middlebox-normalized destinations should disagree by > 1.
        assert wrong <= 0.1 * max(correct, 1)

    def test_rtt_measurements_plausible(self, fr16):
        mean_rtt = fr16.mean_rtt_ms()
        assert mean_rtt is not None
        # hop_latency 2 ms * up to 32 hops * 2 directions + jitter.
        assert 1.0 <= mean_rtt <= 200.0

    def test_mismatch_rate_tiny(self, fr16):
        total = fr16.responses + fr16.mismatched_quotes
        assert fr16.mismatched_quotes <= 0.01 * total
