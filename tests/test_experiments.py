"""Experiment drivers: every table/figure driver runs end to end on a tiny
topology and produces sane structured output."""

import pytest

from repro.experiments import (
    ExperimentContext,
    bench_prefix_count,
    run_discovery_experiment,
    run_fig3,
    run_fig4,
    run_fig6,
    run_fig7,
    run_fig8,
    run_neighborhood_protection,
    run_proximity_span_ablation,
    run_rewrite_detection,
    run_round_pacing_ablation,
    run_table1,
    run_table2,
    run_table3,
    run_table4,
    run_table5,
)


@pytest.fixture(scope="module")
def context(tiny_topology):
    return ExperimentContext(topology=tiny_topology)


class TestEnvironment:
    def test_bench_prefix_count_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_PREFIXES", "2222")
        assert bench_prefix_count() == 2222

    def test_bench_prefix_count_rejects_zero(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_PREFIXES", "0")
        with pytest.raises(ValueError):
            bench_prefix_count()

    def test_context_shares_targets(self, context):
        assert len(context.random_targets) == context.topology.num_prefixes
        assert len(context.hitlist) == context.topology.num_prefixes


class TestTableDrivers:
    def test_table1_rows_and_effect(self, context):
        result = run_table1(context)
        assert len(result.rows) == 4
        # Redundancy removal saves probes at both split TTLs.
        for split in (32, 16):
            on = next(r for r in result.rows if r[0] == split and r[1] == "On")
            off = next(r for r in result.rows
                       if r[0] == split and r[1] == "Off")
            assert on[3] < off[3]
        assert "Redundancy" in result.render()

    def test_table2_six_rows(self, context):
        result = run_table2(context)
        assert len(result.rows) == 6
        labels = [row[0] for row in result.rows]
        assert "16/hitlist preprobing" in labels
        assert "32/no preprobing" in labels

    def test_table3_tools_and_ordering(self, context):
        result = run_table3(context)
        labels = [row[0] for row in result.rows]
        assert labels[0] == "FlashRoute-16"
        by_label = {row[0]: row for row in result.rows}
        # FlashRoute-16 uses fewer probes than Yarrp-32.
        assert by_label["FlashRoute-16"][2] < by_label["Yarrp-32"][2]
        # The UDP simulation issues exactly 32 probes per target.
        assert by_label["Yarrp-32-UDP (Simulation)"][2] == \
            32 * len(context.random_targets)

    def test_table4_reports_all_tools(self, context):
        result = run_table4(context)
        labels = [row[0] for row in result.rows]
        assert len(labels) == 5
        assert all(isinstance(row[1], int) and isinstance(row[2], int)
                   for row in result.rows)

    def test_table5_rates_positive(self, context):
        result = run_table5(context)
        assert len(result.rows) == 4
        for row in result.rows:
            assert row.rate_pps > 0
        assert "Scan Speed" in result.render()

    def test_neighborhood_protection_rows(self, context):
        result = run_neighborhood_protection(context)
        assert len(result.rows) == 3


class TestFigureDrivers:
    def test_fig3_mostly_exact(self, context):
        result = run_fig3(context)
        assert result.distribution.samples > 0
        assert result.distribution.fraction_exact() > 0.6
        assert "Figure 3" in result.render()

    def test_fig4_renders(self, context):
        result = run_fig4(context)
        assert 0 <= result.neighbourhood_coverage <= 1
        assert "Figure 4" in result.render()

    def test_fig6_monotone_interfaces(self, context):
        result = run_fig6(context, gap_limits=(0, 1, 5))
        interfaces = result.interfaces_series()
        assert interfaces[0] <= interfaces[1] <= interfaces[5]
        times = result.time_series()
        assert times[0] <= times[5]

    def test_fig7_histograms(self, context):
        result = run_fig7(context)
        n = len(context.random_targets)
        # Scamper probes every target at its first TTL; FlashRoute's
        # preprobing moves some split points away from 16.
        assert result.scamper[16] == n
        assert result.flashroute[16] >= 0.5 * n

    def test_fig8_bias_direction(self, context):
        result = run_fig8(context)
        report = result.report
        assert report.hitlist_responsive > report.random_responsive
        assert 1 in result.jaccard_by_hop
        assert "Figure 8" in result.render()


class TestExtraDrivers:
    def test_discovery_experiment(self, context):
        result = run_discovery_experiment(context, extra_scans=2)
        assert len(result.discovery.extras) == 2
        assert "discovery-optimized" in result.render()

    def test_rewrite_detection_rates_bounded(self, context):
        result = run_rewrite_detection(context, seeds=(1, 2))
        for _tool, _responses, _mismatches, rate in result.rows:
            # One rewrite stub can cover a visible share of a 128-prefix
            # space; the benchmark checks the tighter full-scale bound.
            assert 0.0 <= rate < 0.05

    def test_span_ablation(self, context):
        result = run_proximity_span_ablation(context, spans=(0, 5))
        assert len(result.rows) == 2
        # Span 5 covers at least as much as span 0.
        cov0 = float(result.rows[0][1].rstrip("%"))
        cov5 = float(result.rows[1][1].rstrip("%"))
        assert cov5 >= cov0

    def test_pacing_ablation(self, context):
        result = run_round_pacing_ablation(context, round_seconds=(0.0, 1.0))
        assert len(result.rows) == 2


class TestNewDrivers:
    def test_route_holes_driver(self, context):
        from repro.experiments import run_route_holes

        result = run_route_holes(context)
        assert len(result.rows) == 2
        assert result.holes("FlashRoute-16") >= 0
        assert "route completeness" in result.render()
        with pytest.raises(KeyError):
            result.holes("nonexistent")

    def test_granularity_future_work_driver(self, context):
        from repro.experiments import run_granularity_future_work

        result = run_granularity_future_work(context, fine_granularity=25,
                                             extra_scans=1)
        labels = [row[0] for row in result.rows]
        assert labels[0] == "baseline one-per-/24"
        assert "one-per-/25" in labels
        assert any("varying dst" in label for label in labels)
        # Memory column reflects the exponential DCB cost.
        memory = {row[0]: row[4] for row in result.rows}
        assert memory["one-per-/25"] != memory["baseline one-per-/24"]
