"""Unit tests for IPv4 address and prefix arithmetic."""

import pytest
from hypothesis import given, strategies as st

from repro.net.addr import (
    AddressError,
    MAX_IPV4,
    addr_in_prefix24,
    cidr_to_range,
    host_octet,
    int_to_ip,
    ip_to_int,
    is_reserved,
    iter_prefix24,
    prefix24_base,
    prefix24_of,
    prefix_of,
)


class TestIpToInt:
    def test_zero(self):
        assert ip_to_int("0.0.0.0") == 0

    def test_max(self):
        assert ip_to_int("255.255.255.255") == MAX_IPV4

    def test_known_value(self):
        assert ip_to_int("10.0.0.1") == (10 << 24) | 1

    def test_octet_order_is_big_endian(self):
        assert ip_to_int("1.2.3.4") == 0x01020304

    @pytest.mark.parametrize("bad", [
        "256.0.0.1", "1.2.3", "1.2.3.4.5", "a.b.c.d", "", "1..2.3",
        "-1.2.3.4", "1.2.3.4 ",
    ])
    def test_rejects_malformed(self, bad):
        with pytest.raises(AddressError):
            ip_to_int(bad)


class TestIntToIp:
    def test_known_value(self):
        assert int_to_ip(0x01020304) == "1.2.3.4"

    def test_rejects_negative(self):
        with pytest.raises(AddressError):
            int_to_ip(-1)

    def test_rejects_too_large(self):
        with pytest.raises(AddressError):
            int_to_ip(2**32)

    @given(st.integers(min_value=0, max_value=MAX_IPV4))
    def test_round_trip(self, addr):
        assert ip_to_int(int_to_ip(addr)) == addr


class TestPrefix24:
    def test_prefix_of_addr(self):
        assert prefix24_of(ip_to_int("1.2.3.4")) == 0x010203

    def test_base_is_dot_zero(self):
        assert int_to_ip(prefix24_base(0x010203)) == "1.2.3.0"

    def test_compose(self):
        assert int_to_ip(addr_in_prefix24(0x010203, 77)) == "1.2.3.77"

    def test_host_octet(self):
        assert host_octet(ip_to_int("9.9.9.200")) == 200

    def test_compose_rejects_big_host(self):
        with pytest.raises(AddressError):
            addr_in_prefix24(1, 256)

    def test_base_rejects_out_of_range_index(self):
        with pytest.raises(AddressError):
            prefix24_base(2**24)

    @given(st.integers(min_value=0, max_value=MAX_IPV4))
    def test_prefix_and_host_partition_address(self, addr):
        assert addr_in_prefix24(prefix24_of(addr), host_octet(addr)) == addr


class TestPrefixOf:
    def test_full_length_is_identity(self):
        assert prefix_of(0xDEADBEEF, 32) == 0xDEADBEEF

    def test_zero_length_is_zero(self):
        assert prefix_of(0xDEADBEEF, 0) == 0

    def test_slash8(self):
        assert prefix_of(ip_to_int("10.1.2.3"), 8) == ip_to_int("10.0.0.0")

    def test_rejects_bad_length(self):
        with pytest.raises(AddressError):
            prefix_of(0, 33)


class TestCidr:
    def test_slash24_range(self):
        first, last = cidr_to_range("192.0.2.0/24")
        assert last - first == 255

    def test_range_is_aligned(self):
        first, _last = cidr_to_range("192.0.2.77/24")
        assert int_to_ip(first) == "192.0.2.0"

    def test_iter_prefix24_counts(self):
        assert len(list(iter_prefix24("10.0.0.0/22"))) == 4

    def test_iter_prefix24_rejects_small_blocks(self):
        with pytest.raises(AddressError):
            list(iter_prefix24("10.0.0.0/25"))

    def test_rejects_no_slash(self):
        with pytest.raises(AddressError):
            cidr_to_range("10.0.0.0")

    def test_rejects_bad_length(self):
        with pytest.raises(AddressError):
            cidr_to_range("10.0.0.0/40")


class TestReserved:
    @pytest.mark.parametrize("addr", [
        "10.1.2.3", "127.0.0.1", "192.168.1.1", "224.0.0.5", "240.0.0.1",
        "169.254.10.10", "100.64.0.1",
    ])
    def test_reserved_addresses(self, addr):
        assert is_reserved(ip_to_int(addr))

    @pytest.mark.parametrize("addr", ["8.8.8.8", "20.0.0.1", "1.1.1.1"])
    def test_public_addresses(self, addr):
        assert not is_reserved(ip_to_int(addr))
