"""The seeded chaos harness and the shard pool's crash recovery.

The acceptance pins: the injector is a pure function of (seed, slice,
attempt) — the same spec replays the same fault sequence; a scan that
loses workers under ``slice_retries`` merges byte-identically to a
clean run; exhausted retries salvage completed slices into a
checkpoint that ``--resume`` finishes byte-identically.
"""

import json

import pytest

from repro.core.resilience import load_checkpoint
from repro.core.sharding import ShardError, ShardPlan, run_sharded_scan
from repro.obs.metrics import deterministic_snapshot
from repro.simnet.config import TopologyConfig
from repro.testing.chaos import (
    ChaosError,
    ChaosKilled,
    ChaosSpec,
    kill_schedule,
    load_chaos_spec,
    maybe_kill_slice,
    should_kill,
)

_PREFIXES = 64
_SEED = 11


def _plan(**overrides) -> ShardPlan:
    settings = dict(tool="flashroute-16",
                    topology=TopologyConfig(num_prefixes=_PREFIXES,
                                            seed=_SEED),
                    collect_metrics=True, events_format="jsonl")
    settings.update(overrides)
    return ShardPlan(**settings)


def _deterministic(outcome):
    """The byte-stable triple a chaotic run must reproduce exactly."""
    return (outcome.result.fingerprint(),
            deterministic_snapshot(outcome.metrics_snapshot),
            outcome.events_payload)


class TestChaosSpec:
    def test_validation(self):
        with pytest.raises(ChaosError):
            ChaosSpec(kill_rate=1.5)
        with pytest.raises(ChaosError):
            ChaosSpec(kill_rate=-0.1)
        with pytest.raises(ChaosError):
            ChaosSpec(kills_per_slice=-1)
        with pytest.raises(ChaosError):
            ChaosSpec(kill_slices=(-1,))
        with pytest.raises(ChaosError):
            ChaosSpec(slow_loris=-1)

    def test_zero_kills_per_slice_disarms_the_injector(self):
        spec = ChaosSpec(seed=1, kill_slices=(3,), kills_per_slice=0)
        assert not spec.kills_workers
        assert not should_kill(spec, 3, 0)

    def test_round_trips_through_dict(self):
        spec = ChaosSpec(seed=9, kill_slices=(1, 5), kill_rate=0.25,
                         kills_per_slice=2, slow_loris=3, disconnects=2,
                         resets=1, malformed=4)
        assert ChaosSpec.from_dict(spec.to_dict()) == spec

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ChaosError):
            ChaosSpec.from_dict({"seed": 1, "bogus": True})

    def test_load_inline_json(self):
        spec = load_chaos_spec('{"seed": 3, "kill_slices": [2]}')
        assert spec.seed == 3
        assert spec.kill_slices == (2,)

    def test_load_from_file(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps({"seed": 4, "kill_rate": 0.5}))
        spec = load_chaos_spec(str(path))
        assert spec.seed == 4
        assert spec.kill_rate == 0.5

    def test_load_rejects_garbage(self):
        with pytest.raises(ChaosError):
            load_chaos_spec("not json at all")
        with pytest.raises(ChaosError):
            load_chaos_spec('[1, 2, 3]')


class TestDeterministicInjection:
    def test_same_seed_same_schedule(self):
        spec = ChaosSpec(seed=5, kill_rate=0.4)
        twice = [kill_schedule(spec, slices=16, max_attempts=3)
                 for _ in range(2)]
        assert twice[0] == twice[1]
        assert twice[0]  # 40% over 16 slices: some kill fires

    def test_different_seeds_differ(self):
        schedules = {
            seed: kill_schedule(ChaosSpec(seed=seed, kill_rate=0.4),
                                slices=64, max_attempts=1)
            for seed in (1, 2)
        }
        assert schedules[1] != schedules[2]

    def test_kill_slices_always_fire(self):
        spec = ChaosSpec(seed=0, kill_slices=(3, 7))
        assert should_kill(spec, 3, 0)
        assert should_kill(spec, 7, 0)
        assert not should_kill(spec, 4, 0)

    def test_kills_per_slice_caps_attempts(self):
        spec = ChaosSpec(seed=0, kill_slices=(3,), kills_per_slice=2)
        assert should_kill(spec, 3, 0)
        assert should_kill(spec, 3, 1)
        assert not should_kill(spec, 3, 2)  # retries can succeed

    def test_maybe_kill_raises_with_context(self):
        spec = ChaosSpec(seed=12, kill_slices=(6,))
        with pytest.raises(ChaosKilled) as exc_info:
            maybe_kill_slice(spec, 6, 0)
        message = str(exc_info.value)
        assert "slice 6" in message
        assert "seed 12" in message
        maybe_kill_slice(spec, 5, 0)  # no kill, no raise


class TestSliceRetryRecovery:
    def test_kill_two_of_four_workers_is_byte_identical(self):
        baseline = _deterministic(run_sharded_scan(_plan(shards=4)))
        spec = ChaosSpec(seed=7, kill_slices=(2, 9))
        outcome = run_sharded_scan(_plan(shards=4), slice_retries=1,
                                   chaos=spec)
        assert outcome.slices_retried == 2
        assert _deterministic(outcome) == baseline

    def test_same_seed_twice_same_merged_output(self):
        spec = ChaosSpec(seed=5, kill_rate=0.3)
        runs = [run_sharded_scan(_plan(shards=2), slice_retries=2,
                                 chaos=spec) for _ in range(2)]
        assert runs[0].slices_retried == runs[1].slices_retried
        assert runs[0].slices_retried > 0
        assert _deterministic(runs[0]) == _deterministic(runs[1])

    def test_sequential_path_retries_too(self):
        baseline = _deterministic(run_sharded_scan(_plan(shards=1)))
        outcome = run_sharded_scan(_plan(shards=1), slice_retries=1,
                                   chaos=ChaosSpec(seed=1,
                                                   kill_slices=(4,)))
        assert outcome.slices_retried == 1
        assert _deterministic(outcome) == baseline

    def test_retries_compose_with_faults(self):
        overrides = dict(loss=0.03, blackout=0.05, fault_seed=9)
        baseline = _deterministic(
            run_sharded_scan(_plan(shards=4, **overrides)))
        outcome = run_sharded_scan(
            _plan(shards=4, **overrides), slice_retries=1,
            chaos=ChaosSpec(seed=2, kill_slices=(0, 11)))
        assert _deterministic(outcome) == baseline

    def test_negative_retries_rejected(self):
        with pytest.raises(ValueError):
            run_sharded_scan(_plan(shards=2), slice_retries=-1)


class TestSalvageCheckpoint:
    def test_exhausted_retries_salvage_then_resume(self, tmp_path):
        baseline = _deterministic(run_sharded_scan(_plan(shards=4)))
        path = str(tmp_path / "scan.ckpt")
        # kills_per_slice=2 outlives slice_retries=1: slice 14 dies on
        # both attempts, so the pool gives up and salvages.
        spec = ChaosSpec(seed=3, kill_slices=(14,), kills_per_slice=2)
        with pytest.raises(ShardError) as exc_info:
            run_sharded_scan(_plan(shards=4), slice_retries=1,
                             chaos=spec, salvage_path=path)
        error = exc_info.value
        assert error.slice_index == 14
        assert error.attempts == 2
        assert error.checkpoint_path == path
        assert "--resume" in str(error)
        document = load_checkpoint(path)
        resumed = run_sharded_scan(_plan(shards=4),
                                   resume_state=document["state"])
        assert resumed.slices_resumed > 0
        assert _deterministic(resumed) == baseline

    def test_checkpoint_path_doubles_as_salvage_target(self, tmp_path):
        path = str(tmp_path / "scan.ckpt")
        spec = ChaosSpec(seed=3, kill_slices=(8,), kills_per_slice=1)
        with pytest.raises(ShardError) as exc_info:
            run_sharded_scan(_plan(shards=2), checkpoint_path=path,
                             chaos=spec)
        assert exc_info.value.checkpoint_path == path
        assert load_checkpoint(path)["engine"] == "sharded"

    def test_no_path_no_salvage(self):
        spec = ChaosSpec(seed=3, kill_slices=(8,))
        with pytest.raises(ShardError) as exc_info:
            run_sharded_scan(_plan(shards=2), chaos=spec)
        assert exc_info.value.checkpoint_path is None


class TestChaosCliFlags:
    def _scan(self, *extra):
        from repro.cli import main

        return main(["scan", "--prefixes", "64", *extra])

    def test_slice_retries_requires_shards(self, capsys):
        with pytest.raises(SystemExit) as exc_info:
            self._scan("--slice-retries", "1")
        assert exc_info.value.code == 2
        assert "--shards" in capsys.readouterr().err

    def test_chaos_spec_requires_shards(self, capsys):
        with pytest.raises(SystemExit) as exc_info:
            self._scan("--chaos-spec", '{"seed": 1}')
        assert exc_info.value.code == 2
        assert "--shards" in capsys.readouterr().err

    def test_invalid_spec_exits_two(self, capsys):
        with pytest.raises(SystemExit) as exc_info:
            self._scan("--shards", "2", "--chaos-spec",
                       '{"seed": 1, "bogus": 2}')
        assert exc_info.value.code == 2
        assert "--chaos-spec" in capsys.readouterr().err

    def test_cli_kill_and_recover_matches_clean(self, tmp_path, capsys):
        from repro.cli import main

        clean = tmp_path / "clean.json"
        chaotic = tmp_path / "chaotic.json"
        assert main(["scan", "--prefixes", "64", "--shards", "4",
                     "--output", str(clean)]) == 0
        assert main(["scan", "--prefixes", "64", "--shards", "4",
                     "--slice-retries", "1",
                     "--chaos-spec", '{"seed": 7, "kill_slices": [2, 9]}',
                     "--output", str(chaotic)]) == 0
        capsys.readouterr()
        assert clean.read_bytes() == chaotic.read_bytes()
