"""Resilience layer (repro.core.resilience): probe retransmission,
adaptive rate backoff, checkpoint/resume, and the CLI's interrupt/resume
surface.  The headline properties: an inert config is byte-identical to
the seed behaviour for every scanner, and an interrupted-then-resumed
scan equals an uninterrupted one."""

import dataclasses
import json

import pytest

from repro.baselines.yarrp import Yarrp, YarrpConfig
from repro.cli import main
from repro.core.config import FlashRouteConfig
from repro.core.prober import FlashRoute
from repro.core.resilience import (
    CHECKPOINT_FORMAT,
    CHECKPOINT_VERSION,
    AdaptiveRateController,
    CheckpointError,
    ResilienceConfig,
    RetryTracker,
    ScanInterrupted,
    load_checkpoint,
    write_checkpoint,
)
from repro.core.scanner import ScannerOptions, create_scanner
from repro.core.targets import random_targets
from repro.obs import EventRecorder, Telemetry, read_events, validate_events
from repro.obs.scandiff import diff_views, view_from_events
from repro.simnet import (
    FaultModel,
    SimulatedNetwork,
    Topology,
    TopologyConfig,
)

CFG = TopologyConfig(num_prefixes=96, seed=13)
FAULT_SEED = 0x10552020

ALL_TOOLS = ("flashroute-16", "yarrp-16", "scamper-16", "traceroute")

#: An inert config: every knob at its default.  The tentpole property is
#: that this is indistinguishable from ``resilience=None``.
INERT = dict(retries=0, adaptive_rate=False)


@pytest.fixture(scope="module")
def topology():
    return Topology(CFG)


@pytest.fixture(scope="module")
def targets(topology):
    return random_targets(topology, seed=1)


def run_tool(topology, tool, resilience=None, events_path=None,
             faults=None, use_route_cache=True, rate=None):
    telemetry = None
    if events_path is not None:
        telemetry = Telemetry(events=EventRecorder(path=str(events_path)))
    scanner = create_scanner(tool, ScannerOptions(
        seed=1, probing_rate=rate, telemetry=telemetry,
        resilience=resilience))
    network = SimulatedNetwork(topology, faults=faults,
                               use_route_cache=use_route_cache)
    result = scanner.scan(network, targets=random_targets(topology, seed=1))
    if telemetry is not None:
        telemetry.close()
    return result


# --------------------------------------------------------------------- #
# Property: inert resilience is byte-identical to seed behaviour
# --------------------------------------------------------------------- #

class TestInertEquivalence:
    @pytest.mark.parametrize("tool", ALL_TOOLS)
    def test_results_byte_identical(self, topology, tool):
        baseline = run_tool(topology, tool)
        inert = run_tool(topology, tool,
                         resilience=ResilienceConfig(**INERT))
        assert inert.fingerprint() == baseline.fingerprint()

    @pytest.mark.parametrize("tool", ALL_TOOLS)
    def test_event_logs_byte_identical(self, topology, tool, tmp_path):
        base_log = tmp_path / "base.jsonl"
        inert_log = tmp_path / "inert.jsonl"
        run_tool(topology, tool, events_path=base_log)
        run_tool(topology, tool, resilience=ResilienceConfig(**INERT),
                 events_path=inert_log)
        assert inert_log.read_bytes() == base_log.read_bytes()

    def test_uncached_network_equivalence(self, topology):
        """The property holds on the simulator's uncached path too."""
        for tool in ("flashroute-16", "yarrp-16"):
            baseline = run_tool(topology, tool, use_route_cache=False)
            inert = run_tool(topology, tool,
                             resilience=ResilienceConfig(**INERT),
                             use_route_cache=False)
            assert inert.fingerprint() == baseline.fingerprint()
            # And the uncached result equals the cached one.
            assert inert.fingerprint() == \
                run_tool(topology, tool).fingerprint()

    def test_retries_are_deterministic(self, topology):
        faults = FaultModel.symmetric_loss(0.05, seed=FAULT_SEED)
        resil = ResilienceConfig(retries=2)
        first = run_tool(topology, "flashroute-16", resilience=resil,
                         faults=faults)
        again = run_tool(topology, "flashroute-16", resilience=resil,
                         faults=faults)
        assert first.fingerprint() == again.fingerprint()


# --------------------------------------------------------------------- #
# Retransmission: recovery under loss
# --------------------------------------------------------------------- #

class TestRetryRecovery:
    @pytest.mark.parametrize("tool", ALL_TOOLS)
    def test_retries_recover_responses(self, topology, tool):
        faults = FaultModel.symmetric_loss(0.05, seed=FAULT_SEED)
        bare = run_tool(topology, tool, faults=faults)
        retried = run_tool(topology, tool,
                           resilience=ResilienceConfig(retries=2),
                           faults=faults)
        assert retried.probes_sent > bare.probes_sent
        assert retried.responses > bare.responses
        assert retried.interface_count() >= bare.interface_count()

    def test_recovers_80_percent_of_induced_holes(self):
        """The acceptance number, at the bench configuration."""
        from repro.experiments import ExperimentContext, run_loss_recovery

        context = ExperimentContext.for_bench(128)
        outcome = run_loss_recovery(
            context, loss_rates=(0.05,),
            tools=("flashroute-16", "yarrp-16"), retries=2)
        for (tool, loss), fraction in outcome.recovery.items():
            assert fraction >= 0.80, (tool, loss, fraction)
        payload = outcome.to_json()
        assert set(payload) == {"headers", "rows", "recovery"}
        assert payload["recovery"]  # machine-readable CI artifact

    def test_retry_events_validate(self, topology, tmp_path):
        """Retried scans still produce valid logs, in both encodings."""
        faults = FaultModel.symmetric_loss(0.05, seed=FAULT_SEED)
        resil = ResilienceConfig(retries=2)
        jsonl = tmp_path / "retry.jsonl"
        binary = tmp_path / "retry.bin"
        run_tool(topology, "flashroute-16", resilience=resil,
                 faults=faults, events_path=jsonl)
        run_tool(topology, "flashroute-16", resilience=resil,
                 faults=faults, events_path=binary)
        text_events = read_events(str(jsonl))
        validate_events(text_events)
        retry_events = [e for e in text_events[1:]
                        if e["ev"] == "retry"]
        assert retry_events
        assert all(e["attempt"] >= 1 for e in retry_events)
        assert read_events(str(binary)) == text_events


# --------------------------------------------------------------------- #
# Adaptive rate backoff
# --------------------------------------------------------------------- #

class TestAdaptiveRateController:
    def controller(self, base=1000.0, **knobs):
        return AdaptiveRateController(
            base, ResilienceConfig(adaptive_rate=True, **knobs))

    def test_quiet_round_is_a_no_op(self):
        controller = self.controller()
        assert controller.observe_round(100, 90, 0) is None
        assert controller.rate == 1000.0

    def test_loss_backs_off_multiplicatively(self):
        controller = self.controller()
        assert controller.observe_round(100, 10, 0) == ("backoff", 500.0)
        assert controller.observe_round(100, 10, 0) == ("backoff", 250.0)
        assert controller.backoffs == 2

    def test_drops_back_off_too(self):
        controller = self.controller()
        assert controller.observe_round(100, 95, 10) == ("backoff", 500.0)

    def test_rate_is_floor_bounded(self):
        controller = self.controller()
        for _ in range(20):
            controller.observe_round(100, 0, 0)
        assert controller.rate == pytest.approx(100.0)  # 10% of base
        assert controller.observe_round(100, 0, 0) is None  # at the floor

    def test_clean_rounds_recover_additively(self):
        controller = self.controller()
        controller.observe_round(100, 0, 0)          # 1000 -> 500
        assert controller.observe_round(100, 90, 0) == ("recover", 625.0)
        for _ in range(10):
            controller.observe_round(100, 90, 0)
        assert controller.rate == 1000.0             # capped at base
        assert controller.observe_round(100, 90, 0) is None

    def test_state_round_trip(self):
        controller = self.controller()
        controller.observe_round(100, 0, 0)
        restored = self.controller()
        restored.restore_state(controller.state_dict())
        assert restored.rate == controller.rate
        assert restored.backoffs == controller.backoffs

    def test_engine_emits_rate_change_events(self, topology, tmp_path):
        """Heavy loss must trigger at least one recorded backoff.

        The base rate is pinned well above the controller's 1 pps
        absolute floor so the backoff has room to act (the scaled
        default for a 96-prefix simulation sits *at* the floor).
        """
        log = tmp_path / "adaptive.jsonl"
        faults = FaultModel.symmetric_loss(0.9, seed=FAULT_SEED)
        run_tool(topology, "flashroute-16",
                 resilience=ResilienceConfig(adaptive_rate=True),
                 faults=faults, events_path=log, rate=200.0)
        events = read_events(str(log))
        validate_events(events)
        changes = [e for e in events[1:] if e["ev"] == "rate_change"]
        assert changes
        assert changes[0]["reason"] == "backoff"
        assert changes[0]["rate"] == 100.0  # 200 halved once


class TestRetryTracker:
    def test_lifecycle(self):
        tracker = RetryTracker(budget=1, timeout=1.0)
        tracker.record_sent(5, 7, vt=0.0, attempt=0)
        assert tracker.has_open(5)
        tracker.sweep(0.5)                 # not timed out yet
        assert tracker.take_due(5) == []
        tracker.sweep(1.0)                 # timed out -> due
        assert tracker.take_due(5) == [(7, 1)]
        tracker.record_sent(5, 7, vt=1.0, attempt=1)
        tracker.record_response(5, 7)
        assert tracker.recovered == 1
        assert not tracker.has_open(5)

    def test_budget_exhaustion(self):
        tracker = RetryTracker(budget=1, timeout=1.0)
        tracker.record_sent(5, 7, vt=0.0, attempt=1)
        tracker.sweep(2.0)
        assert tracker.exhausted == 1
        assert tracker.take_due(5) == []

    def test_state_round_trip(self):
        tracker = RetryTracker(budget=2, timeout=1.0)
        tracker.record_sent(5, 7, vt=0.0, attempt=0)
        tracker.record_sent(5, 9, vt=0.0, attempt=0)
        tracker.sweep(1.0)
        restored = RetryTracker(budget=2, timeout=1.0)
        restored.restore_state(tracker.state_dict())
        assert restored.state_dict() == tracker.state_dict()
        assert restored.take_due(5) == [(7, 1), (9, 1)]


# --------------------------------------------------------------------- #
# Checkpoint files
# --------------------------------------------------------------------- #

class TestCheckpointFiles:
    STATE = {"engine": "flashroute", "clock": 1.25, "result": {}}

    def test_round_trip(self, tmp_path):
        path = tmp_path / "scan.ckpt"
        write_checkpoint(str(path), "flashroute", self.STATE,
                         meta={"tool": "flashroute-16"})
        loaded = load_checkpoint(str(path))
        assert loaded["format"] == CHECKPOINT_FORMAT
        assert loaded["version"] == CHECKPOINT_VERSION
        assert loaded["engine"] == "flashroute"
        assert loaded["invocation"] == {"tool": "flashroute-16"}
        assert loaded["state"] == self.STATE

    def test_rejects_malformed(self, tmp_path):
        path = tmp_path / "junk.ckpt"
        path.write_text("this is not a checkpoint")
        with pytest.raises(CheckpointError):
            load_checkpoint(str(path))

    def test_rejects_truncated(self, tmp_path):
        path = tmp_path / "cut.ckpt"
        write_checkpoint(str(path), "flashroute", self.STATE)
        payload = path.read_bytes()
        path.write_bytes(payload[:len(payload) // 2])
        with pytest.raises(CheckpointError):
            load_checkpoint(str(path))

    def test_rejects_version_mismatch(self, tmp_path):
        path = tmp_path / "future.ckpt"
        write_checkpoint(str(path), "flashroute", self.STATE)
        document = json.loads(path.read_text())
        document["version"] = CHECKPOINT_VERSION + 1
        path.write_text(json.dumps(document))
        with pytest.raises(CheckpointError, match="version"):
            load_checkpoint(str(path))

    def test_rejects_tampered_state(self, tmp_path):
        path = tmp_path / "tampered.ckpt"
        write_checkpoint(str(path), "flashroute", self.STATE)
        document = json.loads(path.read_text())
        document["state"]["clock"] = 99.0
        path.write_text(json.dumps(document))
        with pytest.raises(CheckpointError, match="checksum"):
            load_checkpoint(str(path))


class TestAtomicCheckpointWrite:
    """``write_checkpoint`` is tmp-file-then-rename: a crash mid-write
    can truncate the temp file, never the checkpoint itself."""

    STATE = {"engine": "flashroute", "clock": 1.25, "result": {}}

    def test_no_tmp_file_left_behind(self, tmp_path):
        path = tmp_path / "scan.ckpt"
        write_checkpoint(str(path), "flashroute", self.STATE)
        assert path.exists()
        assert not (tmp_path / "scan.ckpt.tmp").exists()

    def test_failed_write_preserves_previous_checkpoint(self, tmp_path,
                                                        monkeypatch):
        import os as os_module

        from repro.core import resilience

        path = tmp_path / "scan.ckpt"
        write_checkpoint(str(path), "flashroute", self.STATE)
        good = path.read_bytes()

        # A crash between the tmp write and the rename (the fsync here)
        # must leave the previous checkpoint byte-identical and clean
        # up the truncated tmp file.
        def exploding_fsync(fd):
            raise OSError("disk full")

        monkeypatch.setattr(resilience.os, "fsync", exploding_fsync)
        with pytest.raises(OSError, match="disk full"):
            write_checkpoint(str(path), "flashroute",
                             dict(self.STATE, clock=9.0))
        monkeypatch.setattr(resilience.os, "fsync", os_module.fsync)
        assert path.read_bytes() == good
        assert load_checkpoint(str(path))["state"] == self.STATE
        assert not (tmp_path / "scan.ckpt.tmp").exists()

    def test_truncated_tmp_does_not_break_load_or_next_write(
            self, tmp_path):
        path = tmp_path / "scan.ckpt"
        write_checkpoint(str(path), "flashroute", self.STATE)
        # Simulate a crash that left a half-written temp file around.
        (tmp_path / "scan.ckpt.tmp").write_text('{"format": "flashro')
        assert load_checkpoint(str(path))["state"] == self.STATE
        write_checkpoint(str(path), "flashroute",
                         dict(self.STATE, clock=2.5))
        assert load_checkpoint(str(path))["state"]["clock"] == 2.5
        assert not (tmp_path / "scan.ckpt.tmp").exists()


# --------------------------------------------------------------------- #
# Interrupt + resume equals uninterrupted (engine level)
# --------------------------------------------------------------------- #

def interrupt_after(rounds, path):
    def hook(round_no):
        if round_no >= rounds:
            raise KeyboardInterrupt
    return ResilienceConfig(checkpoint_path=str(path), checkpoint_every=1,
                            round_hook=hook)


class TestInterruptResume:
    @pytest.mark.parametrize("stop_after", [1, 3, 7])
    def test_flashroute(self, topology, targets, tmp_path, stop_after):
        reference = FlashRoute(FlashRouteConfig.flashroute_16()).scan(
            SimulatedNetwork(topology), targets=targets)
        path = tmp_path / "fr.ckpt"
        config = FlashRouteConfig.flashroute_16(
            resilience=interrupt_after(stop_after, path))
        with pytest.raises(ScanInterrupted) as exc_info:
            FlashRoute(config).scan(SimulatedNetwork(topology),
                                    targets=targets)
        assert exc_info.value.checkpoint_path == str(path)
        document = load_checkpoint(str(path))
        resumed = FlashRoute(FlashRouteConfig.flashroute_16()).resume(
            SimulatedNetwork(topology), document["state"])
        assert resumed.fingerprint() == reference.fingerprint()

    @pytest.mark.parametrize("stop_after", [2, 10, 20])
    def test_yarrp(self, topology, targets, tmp_path, stop_after):
        reference = Yarrp(YarrpConfig.yarrp_16()).scan(
            SimulatedNetwork(topology), targets=targets)
        path = tmp_path / "yarrp.ckpt"
        config = dataclasses.replace(
            YarrpConfig.yarrp_16(),
            resilience=interrupt_after(stop_after, path))
        with pytest.raises(ScanInterrupted) as exc_info:
            Yarrp(config).scan(SimulatedNetwork(topology), targets=targets)
        assert exc_info.value.checkpoint_path == str(path)
        document = load_checkpoint(str(path))
        resumed = Yarrp(YarrpConfig.yarrp_16()).resume(
            SimulatedNetwork(topology), document["state"])
        assert resumed.fingerprint() == reference.fingerprint()

    def test_wrong_engine_state_rejected(self, topology, targets, tmp_path):
        path = tmp_path / "fr.ckpt"
        config = FlashRouteConfig.flashroute_16(
            resilience=interrupt_after(1, path))
        with pytest.raises(ScanInterrupted):
            FlashRoute(config).scan(SimulatedNetwork(topology),
                                    targets=targets)
        state = load_checkpoint(str(path))["state"]
        with pytest.raises(CheckpointError):
            Yarrp(YarrpConfig.yarrp_16()).resume(
                SimulatedNetwork(topology), state)


# --------------------------------------------------------------------- #
# CLI: --checkpoint / --interrupt-after-round / --resume
# --------------------------------------------------------------------- #

SCAN_ARGS = ["scan", "--prefixes", "96", "--seed", "3"]


class TestCliInterruptResume:
    def reference_payload(self, capsys, tool="flashroute-16"):
        assert main(SCAN_ARGS + ["--tool", tool, "--json"]) == 0
        return json.loads(capsys.readouterr().out)

    @pytest.mark.parametrize("tool", ["flashroute-16", "yarrp-16"])
    def test_interrupt_exits_130_then_resume_matches(self, capsys,
                                                     tmp_path, tool):
        reference = self.reference_payload(capsys, tool)
        ckpt = str(tmp_path / "scan.ckpt")
        code = main(SCAN_ARGS + ["--tool", tool, "--checkpoint", ckpt,
                                 "--interrupt-after-round", "2"])
        captured = capsys.readouterr()
        assert code == 130
        assert f"checkpoint written to {ckpt}" in captured.err
        assert f"--resume {ckpt}" in captured.err
        # --resume replays the checkpoint's invocation record: no other
        # flags needed, and the finished scan equals the uninterrupted one.
        assert main(["scan", "--resume", ckpt, "--json"]) == 0
        assert json.loads(capsys.readouterr().out) == reference

    def test_interrupt_without_checkpoint_still_exits_130(self, capsys):
        code = main(SCAN_ARGS + ["--interrupt-after-round", "1"])
        captured = capsys.readouterr()
        assert code == 130
        assert "no checkpoint" in captured.err

    def test_resume_missing_file_exits_2(self, capsys, tmp_path):
        with pytest.raises(SystemExit) as exc_info:
            main(["scan", "--resume", str(tmp_path / "absent.ckpt")])
        assert exc_info.value.code == 2
        assert "resume:" in capsys.readouterr().err

    def test_resume_malformed_exits_2(self, capsys, tmp_path):
        path = tmp_path / "junk.ckpt"
        path.write_text("{not json")
        with pytest.raises(SystemExit) as exc_info:
            main(["scan", "--resume", str(path)])
        assert exc_info.value.code == 2
        assert "resume:" in capsys.readouterr().err

    def test_resume_truncated_exits_2(self, capsys, tmp_path):
        ckpt = tmp_path / "scan.ckpt"
        assert main(SCAN_ARGS + ["--checkpoint", str(ckpt),
                                 "--interrupt-after-round", "1"]) == 130
        capsys.readouterr()
        payload = ckpt.read_bytes()
        ckpt.write_bytes(payload[:len(payload) // 2])
        with pytest.raises(SystemExit) as exc_info:
            main(["scan", "--resume", str(ckpt)])
        assert exc_info.value.code == 2
        assert "resume:" in capsys.readouterr().err

    def test_resume_version_mismatch_exits_2(self, capsys, tmp_path):
        ckpt = tmp_path / "scan.ckpt"
        assert main(SCAN_ARGS + ["--checkpoint", str(ckpt),
                                 "--interrupt-after-round", "1"]) == 130
        capsys.readouterr()
        document = json.loads(ckpt.read_text())
        document["version"] = CHECKPOINT_VERSION + 1
        ckpt.write_text(json.dumps(document))
        with pytest.raises(SystemExit) as exc_info:
            main(["scan", "--resume", str(ckpt)])
        assert exc_info.value.code == 2
        assert "version" in capsys.readouterr().err

    def test_resume_unsupported_tool_exits_2(self, capsys, tmp_path):
        """A checkpoint whose invocation names a tool without resume()."""
        ckpt = tmp_path / "scan.ckpt"
        assert main(SCAN_ARGS + ["--checkpoint", str(ckpt),
                                 "--interrupt-after-round", "1"]) == 130
        capsys.readouterr()
        document = json.loads(ckpt.read_text())
        document["invocation"]["tool"] = "traceroute"
        ckpt.write_text(json.dumps(document))
        # The checksum covers only the state payload, so the edited
        # invocation loads fine; the scan path then refuses the tool.
        assert main(["scan", "--resume", str(ckpt)]) == 2
        assert "does not support" in capsys.readouterr().err

    def test_retry_flags_on_cli(self, capsys):
        assert main(SCAN_ARGS + ["--loss", "0.05", "--fault-seed", "7",
                                 "--retries", "2", "--json"]) == 0
        retried = json.loads(capsys.readouterr().out)
        assert main(SCAN_ARGS + ["--loss", "0.05", "--fault-seed", "7",
                                 "--json"]) == 0
        bare = json.loads(capsys.readouterr().out)
        assert retried["probes"] > bare["probes"]
        assert retried["holes"] <= bare["holes"]

    def test_rejects_negative_retries(self, capsys):
        with pytest.raises(SystemExit) as exc_info:
            main(SCAN_ARGS + ["--retries", "-1"])
        assert exc_info.value.code == 2


# --------------------------------------------------------------------- #
# scan-diff attribution of exhausted retry budgets
# --------------------------------------------------------------------- #

class TestScanDiffExhaustedRetries:
    def test_persistent_holes_cite_every_attempt(self, topology, tmp_path):
        clean_log = tmp_path / "clean.jsonl"
        lossy_log = tmp_path / "lossy.jsonl"
        run_tool(topology, "flashroute-16", events_path=clean_log)
        model = FaultModel.symmetric_loss(0.4, seed=FAULT_SEED)
        run_tool(topology, "flashroute-16",
                 resilience=ResilienceConfig(retries=2),
                 faults=model, events_path=lossy_log)
        view_a = view_from_events("clean", read_events(str(clean_log)))
        view_b = view_from_events("lossy", read_events(str(lossy_log)))
        divergences = diff_views(view_a, view_b, fault_model=model)
        exhausted = [d for d in divergences
                     if d.cause == "exhausted_retries"]
        assert exhausted, "no hole survived the whole retry budget"
        for divergence in exhausted:
            # One citation per attempt, each naming the injector's draw.
            assert "attempt 0:" in divergence.detail
            assert "attempt 1:" in divergence.detail
            assert "@vt=" in divergence.detail

    def test_without_fault_model_still_classified(self, topology, tmp_path):
        clean_log = tmp_path / "clean.jsonl"
        lossy_log = tmp_path / "lossy.jsonl"
        run_tool(topology, "flashroute-16", events_path=clean_log)
        model = FaultModel.symmetric_loss(0.4, seed=FAULT_SEED)
        run_tool(topology, "flashroute-16",
                 resilience=ResilienceConfig(retries=2),
                 faults=model, events_path=lossy_log)
        view_a = view_from_events("clean", read_events(str(clean_log)))
        view_b = view_from_events("lossy", read_events(str(lossy_log)))
        divergences = diff_views(view_a, view_b)   # no fault model given
        exhausted = [d for d in divergences
                     if d.cause == "exhausted_retries"]
        assert exhausted
        assert all("attempts, all unanswered" in d.detail
                   for d in exhausted)
