"""Scamper model: Doubletree at 10 Kpps with the empirical Fig. 7 quirk."""

import pytest

from repro.baselines.scamper import Scamper, ScamperConfig
from repro.core.config import FlashRouteConfig
from repro.core.prober import FlashRoute
from repro.simnet.network import SimulatedNetwork


@pytest.fixture(scope="module")
def scamper_result(small_topology, small_targets):
    return Scamper(ScamperConfig.scamper_16()).scan(
        SimulatedNetwork(small_topology), targets=small_targets)


@pytest.fixture(scope="module")
def flashroute_result(small_topology, small_targets):
    return FlashRoute(FlashRouteConfig(
        split_ttl=16, preprobe="none")).scan(
        SimulatedNetwork(small_topology), targets=small_targets)


class TestConfig:
    def test_defaults_match_paper(self):
        config = ScamperConfig.scamper_16()
        assert config.first_ttl == 16
        assert config.max_ttl == 32
        assert config.gap_limit == 5

    @pytest.mark.parametrize("kwargs", [
        {"first_ttl": 0}, {"first_ttl": 20, "max_ttl": 18},
        {"max_ttl": 40}, {"gap_limit": -1},
        {"no_stop_window": (10, 5)},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            ScamperConfig(**kwargs)


class TestBehaviour:
    def test_terminates(self, scamper_result):
        assert scamper_result.duration > 0
        assert scamper_result.probes_sent > 0

    def test_interfaces_real(self, scamper_result, small_topology):
        assert scamper_result.interfaces() <= set(small_topology.iface_addrs)

    def test_probes_every_target_at_split(self, scamper_result, small_targets):
        assert scamper_result.ttl_probe_histogram[16] == len(small_targets)

    def test_max_ttl_respected(self, scamper_result):
        assert max(scamper_result.ttl_probe_histogram) <= 32

    def test_uses_more_probes_than_flashroute(self, scamper_result,
                                              flashroute_result):
        # The Fig. 7 quirk: Scamper keeps probing through the no-stop
        # window, spending more probes than FlashRoute-16.
        assert scamper_result.probes_sent > flashroute_result.probes_sent

    def test_finds_at_least_flashroute_interfaces(self, scamper_result,
                                                  flashroute_result):
        assert scamper_result.interface_count() >= \
            0.95 * flashroute_result.interface_count()

    def test_flat_window_in_ttl_histogram(self, scamper_result):
        """Inside the no-stop window backward probing never terminates, so
        the per-TTL target counts are (nearly) flat from 14 down to 7."""
        histogram = scamper_result.ttl_probe_histogram
        window_counts = [histogram[ttl] for ttl in range(7, 14)]
        assert max(window_counts) - min(window_counts) <= \
            0.05 * max(window_counts)

    def test_plunge_below_window(self, scamper_result):
        """Below TTL 6 stop-set termination resumes: far fewer targets are
        probed at TTL 4 than inside the window."""
        histogram = scamper_result.ttl_probe_histogram
        assert histogram[4] < 0.8 * histogram[10]

    def test_flashroute_declines_earlier_than_scamper(self, scamper_result,
                                                      flashroute_result):
        """Fig. 7: FlashRoute's curve is below Scamper's throughout the
        backward region."""
        for ttl in range(6, 15):
            assert flashroute_result.ttl_probe_histogram[ttl] <= \
                scamper_result.ttl_probe_histogram[ttl]

    def test_scan_slower_than_flashroute(self, tiny_topology, tiny_targets):
        # 10 Kpps vs 100 Kpps: Scamper must take several times longer
        # despite a comparable probe count.  Rates are set explicitly here
        # because the scaled-rate floor erases the 10:1 ratio on a
        # 128-prefix test topology.
        slow = Scamper(ScamperConfig.scamper_16(probing_rate=100.0)).scan(
            SimulatedNetwork(tiny_topology), targets=tiny_targets)
        # Shrink the fixed round pacing too: on 128 targets the >= 1 s
        # rounds, not the probing rate, would dominate FlashRoute's time.
        fast = FlashRoute(FlashRouteConfig(
            split_ttl=16, preprobe="none", probing_rate=1000.0,
            round_seconds=0.05)).scan(
            SimulatedNetwork(tiny_topology), targets=tiny_targets)
        assert slow.duration > 2 * fast.duration
