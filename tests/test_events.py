"""The probe-level flight recorder (repro.obs.events): format round
trips, sampling, ring-buffer mode, engine wiring, and the determinism
contracts event logs must keep (same seed -> byte-identical files,
cached vs uncached -> identical streams, faulted stop/hole events
matching ScanResult)."""

import io
import json

import pytest

from repro.baselines import Scamper, ScamperConfig, Yarrp, YarrpConfig
from repro.baselines.traceroute import TracerouteScanner
from repro.core import FlashRoute, FlashRouteConfig
from repro.obs import (
    EVENTS_SCHEMA,
    EventRecorder,
    Telemetry,
    read_events,
    validate_events,
)
from repro.obs.events import prefix_sampled
from repro.obs.scandiff import view_from_events
from repro.simnet import (
    FaultModel,
    SimulatedNetwork,
    Topology,
    TopologyConfig,
)

CFG = TopologyConfig(num_prefixes=96, seed=13)


@pytest.fixture(scope="module")
def topology():
    return Topology(CFG)


def run_scan(topology, telemetry=None, faults=None, use_route_cache=True,
             seed=1):
    network = SimulatedNetwork(topology, faults=faults,
                               use_route_cache=use_route_cache)
    config = FlashRouteConfig(split_ttl=16, gap_limit=5, seed=seed)
    result = FlashRoute(config, telemetry=telemetry).scan(network)
    if telemetry is not None:
        telemetry.record_network(network)
    return result


def record_scan(topology, path, faults=None, use_route_cache=True, **kw):
    telemetry = Telemetry(events=EventRecorder(path=str(path), **kw))
    result = run_scan(topology, telemetry, faults=faults,
                      use_route_cache=use_route_cache)
    telemetry.close()
    return result


# --------------------------------------------------------------------- #
# EventRecorder unit behaviour
# --------------------------------------------------------------------- #

class TestEventRecorder:
    def emit_sample(self, recorder):
        recorder.probe_sent(0.5, 7, 3, 0x01020304, 41000, "main")
        recorder.response(0.75, 7, 3, 0x0A000001, "ttl_exceeded",
                          rtt=12.5, dup=True)
        recorder.response(0.9, 7, 16, 0x01020304, "port_unreachable",
                          rtt=30.0, dist=16)
        recorder.stop_decision(1.0, 7, "gap_limit", 21)
        recorder.preprobe_predict(0.1, 8, 14, "predicted")
        recorder.dcb_release(2.0, 7)

    def test_jsonl_and_binary_round_trip_identically(self, tmp_path):
        jsonl = tmp_path / "log.jsonl"
        binary = tmp_path / "log.bin"
        for path in (jsonl, binary):
            recorder = EventRecorder(path=str(path))
            self.emit_sample(recorder)
            recorder.close()
        a = read_events(str(jsonl))
        b = read_events(str(binary))
        assert a == b
        assert a[0] == {"ev": "events", "schema": EVENTS_SCHEMA}
        assert a[1]["phase"] == "main"
        assert a[2]["dup"] == 1 and "dist" not in a[2]
        assert a[3]["dist"] == 16 and "dup" not in a[3]
        assert a[4] == {"ev": "stop_decision", "vt": 1.0, "prefix": 7,
                        "reason": "gap_limit", "ttl": 21}
        assert a[5]["source"] == "predicted" and a[5]["distance"] == 14
        assert a[6] == {"ev": "dcb_release", "vt": 2.0, "prefix": 7}
        # The .bin file is the compact format.
        assert binary.stat().st_size < jsonl.stat().st_size

    def test_fast_jsonl_lines_match_json_dumps(self):
        """The hand-rolled line formatter must stay byte-identical to
        json.dumps(sort_keys=True) over every kind and optional field."""
        from repro.obs.events import _record_to_dict, _record_to_line

        recorder = EventRecorder(stream=io.StringIO(), ring=64)
        self.emit_sample(recorder)
        recorder.response(1.25, 7, 9, 0x0A000002, "echo_reply", pre=True)
        recorder.preprobe_predict(0.1, 9, 17, "measured")
        records = list(recorder._ring)
        assert len(records) == 8
        for record in records:
            assert _record_to_line(record) == json.dumps(
                _record_to_dict(record), sort_keys=True) + "\n"

    def test_stream_construction_and_counters(self):
        stream = io.StringIO()
        recorder = EventRecorder(stream=stream)
        self.emit_sample(recorder)
        assert recorder.events_recorded == 6
        assert recorder.events_sampled_out == 0
        recorder.close()
        lines = [json.loads(line) for line in
                 stream.getvalue().strip().split("\n")]
        validate_events(lines)
        assert len(lines) == 7

    def test_ring_buffer_keeps_tail_and_counts_drops(self, tmp_path):
        path = tmp_path / "ring.jsonl"
        recorder = EventRecorder(path=str(path), ring=3)
        for ttl in range(1, 9):
            recorder.probe_sent(float(ttl), 7, ttl, 1, 40000, "main")
        assert recorder.events_dropped == 5
        recorder.close()
        events = read_events(str(path))
        assert [event["ttl"] for event in events[1:]] == [6, 7, 8]

    def test_sampling_is_deterministic_and_per_prefix(self, tmp_path):
        kept = {prefix for prefix in range(512)
                if prefix_sampled(prefix, 0.25)}
        # Deterministic (pure hash) and roughly proportional.
        assert kept == {prefix for prefix in range(512)
                        if prefix_sampled(prefix, 0.25)}
        assert 64 < len(kept) < 192
        assert {p for p in range(512) if prefix_sampled(p, 1.0)} \
            == set(range(512))
        assert not any(prefix_sampled(p, 0.0) for p in range(512))
        # A sampled recorder keeps exactly the hash-selected prefixes.
        path = tmp_path / "sampled.jsonl"
        recorder = EventRecorder(path=str(path), sample=0.25)
        for prefix in range(512):
            recorder.probe_sent(0.0, prefix, 1, prefix, 40000, "main")
        recorder.close()
        events = read_events(str(path))
        assert {event["prefix"] for event in events[1:]} == kept
        assert recorder.events_sampled_out == 512 - len(kept)

    def test_constructor_validation(self, tmp_path):
        with pytest.raises(ValueError):
            EventRecorder()
        with pytest.raises(ValueError):
            EventRecorder(path=str(tmp_path / "x"), stream=io.StringIO())
        with pytest.raises(ValueError):
            EventRecorder(path=str(tmp_path / "x"), sample=1.5)
        with pytest.raises(ValueError):
            EventRecorder(path=str(tmp_path / "x"), ring=0)

    def test_read_events_rejects_malformed(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"ev": "trace", "schema": "other"}\n')
        with pytest.raises(ValueError):
            read_events(str(bad))
        truncated = tmp_path / "bad.bin"
        from repro.obs.events import BINARY_MAGIC
        truncated.write_bytes(BINARY_MAGIC + b"\x1d\x01\x02")
        with pytest.raises(ValueError):
            read_events(str(truncated))


# --------------------------------------------------------------------- #
# Engine wiring: events describe exactly what the scan did
# --------------------------------------------------------------------- #

class TestEngineWiring:
    def test_event_counts_match_scan_result(self, topology, tmp_path):
        path = tmp_path / "scan.jsonl"
        result = record_scan(topology, path)
        events = read_events(str(path))[1:]
        by_kind = {}
        for event in events:
            by_kind.setdefault(event["ev"], []).append(event)
        assert len(by_kind["probe_sent"]) == result.probes_sent
        assert len(by_kind["response"]) == result.responses
        assert sum(1 for e in by_kind["response"] if e.get("dup")) \
            == result.duplicate_responses
        # Every scanned prefix leaves the ring exactly once.
        releases = [e["prefix"] for e in by_kind["dcb_release"]]
        assert len(releases) == len(set(releases)) == result.num_targets

    def test_routes_and_holes_reconstruct_from_events(self, topology,
                                                      tmp_path):
        path = tmp_path / "scan.jsonl"
        result = record_scan(topology, path)
        view = view_from_events(str(path), read_events(str(path)))
        assert view.routes == result.routes
        assert view.dest_distance == result.dest_distance

    def test_same_seed_event_files_byte_identical(self, topology, tmp_path):
        paths = (tmp_path / "a.jsonl", tmp_path / "b.jsonl")
        for path in paths:
            record_scan(topology, path)
        assert paths[0].read_bytes() == paths[1].read_bytes()
        bins = (tmp_path / "a.bin", tmp_path / "b.bin")
        for path in bins:
            record_scan(topology, path)
        assert bins[0].read_bytes() == bins[1].read_bytes()

    def test_cached_vs_uncached_identical_streams(self, topology, tmp_path):
        cached = tmp_path / "cached.jsonl"
        uncached = tmp_path / "uncached.jsonl"
        record_scan(topology, cached, use_route_cache=True)
        record_scan(topology, uncached, use_route_cache=False)
        assert cached.read_bytes() == uncached.read_bytes()

    def test_faulted_run_events_match_scan_result(self, topology, tmp_path):
        path = tmp_path / "faulted.jsonl"
        faults = FaultModel.symmetric_loss(0.03, seed=5,
                                           duplicate_probability=0.02)
        result = record_scan(topology, path, faults=faults)
        view = view_from_events(str(path), read_events(str(path)))
        assert view.routes == result.routes
        assert view.dest_distance == result.dest_distance
        # route_holes() computed over the replayed routes agrees.
        from repro.core.results import ScanResult
        replay = ScanResult(tool="replay")
        replay.routes = view.routes
        replay.dest_distance = view.dest_distance
        assert replay.route_holes() == result.route_holes()
        # Stop decisions cover every retired destination's forward stop.
        events = read_events(str(path))[1:]
        reasons = {e["reason"] for e in events
                   if e["ev"] == "stop_decision"}
        assert reasons <= {"ttl1", "stop_set", "gap_limit", "max_ttl",
                           "dest_reached"}

    def test_events_off_result_identical(self, topology, tmp_path):
        from repro.core.output import result_to_dict
        path = tmp_path / "scan.jsonl"
        recorded = record_scan(topology, path)
        bare = run_scan(topology)
        assert result_to_dict(recorded) == result_to_dict(bare)

    def test_stop_reason_events_match_metrics(self, topology, tmp_path):
        path = tmp_path / "scan.jsonl"
        telemetry = Telemetry(events=EventRecorder(path=str(path)))
        run_scan(topology, telemetry)
        telemetry.close()
        events = read_events(str(path))[1:]
        counts = {}
        for event in events:
            if event["ev"] == "stop_decision":
                counts[event["reason"]] = counts.get(event["reason"], 0) + 1
        reg = telemetry.registry
        assert counts.get("ttl1", 0) == reg.counter("scan.backward_stops.ttl1")
        assert counts.get("stop_set", 0) \
            == reg.counter("scan.backward_stops.stop_set")
        assert counts.get("gap_limit", 0) \
            == reg.counter("scan.forward_stops.gap_limit")
        assert counts.get("max_ttl", 0) \
            == reg.counter("scan.forward_stops.max_ttl")
        assert counts.get("dest_reached", 0) \
            == reg.counter("scan.forward_stops.dest_reached")

    def test_preprobe_predict_events_match_ledger(self, topology, tmp_path):
        path = tmp_path / "scan.jsonl"
        telemetry = Telemetry(events=EventRecorder(path=str(path)))
        run_scan(topology, telemetry)
        telemetry.close()
        events = read_events(str(path))[1:]
        sources = {}
        for event in events:
            if event["ev"] == "preprobe_predict":
                sources[event["source"]] = sources.get(event["source"], 0) + 1
        reg = telemetry.registry
        assert sources.get("measured", 0) \
            == reg.counter("scan.preprobe.measured")
        assert sources.get("predicted", 0) \
            == reg.counter("scan.preprobe.predicted")

    def test_rtt_histogram_recorded_for_every_engine(self, topology):
        engines = {
            "flashroute": lambda t: FlashRoute(
                FlashRouteConfig(split_ttl=16, gap_limit=5), telemetry=t),
            "yarrp": lambda t: Yarrp(YarrpConfig.yarrp_16(), telemetry=t),
            "scamper": lambda t: Scamper(ScamperConfig.scamper_16(),
                                         telemetry=t),
            "traceroute": lambda t: TracerouteScanner(telemetry=t),
        }
        for name, build in engines.items():
            telemetry = Telemetry()
            network = SimulatedNetwork(topology)
            result = build(telemetry).scan(network)
            hist = telemetry.registry.snapshot()["histograms"].get(
                "scan.rtt_ms")
            assert hist is not None, name
            assert hist["count"] == result.responses, name

    def test_baseline_engines_emit_events(self, topology, tmp_path):
        builders = {
            "yarrp": lambda t: Yarrp(YarrpConfig.yarrp_16(), telemetry=t),
            "scamper": lambda t: Scamper(ScamperConfig.scamper_16(),
                                         telemetry=t),
            "traceroute": lambda t: TracerouteScanner(telemetry=t),
        }
        for name, build in builders.items():
            path = tmp_path / f"{name}.jsonl"
            telemetry = Telemetry(events=EventRecorder(path=str(path)))
            result = build(telemetry).scan(SimulatedNetwork(topology))
            telemetry.close()
            events = read_events(str(path))[1:]
            sent = [e for e in events if e["ev"] == "probe_sent"]
            got = [e for e in events if e["ev"] == "response"]
            assert len(sent) == result.probes_sent, name
            assert len(got) == result.responses, name
            view = view_from_events(name, read_events(str(path)))
            assert view.routes == result.routes, name
            assert view.dest_distance == result.dest_distance, name

    def test_artifact_counters_fold_into_registry(self, topology):
        telemetry = Telemetry()
        run_scan(topology, telemetry)
        reg = telemetry.registry
        # The simulated topology has no loops/cycles/diamonds; the
        # counters exist and are zero.
        snapshot = reg.snapshot()["counters"]
        assert snapshot["scan.artifacts.loops"] == 0
        assert snapshot["scan.artifacts.cycles"] == 0
        assert snapshot["scan.artifacts.diamonds"] == 0
