"""Service observability: request tracing, histograms, metrics/health
ops, the slow-request log and the ``top`` dashboard.

Covers the telemetry bundle's determinism contract (telemetry=None is
the untouched PR-7 path; same-virtual-clock runs snapshot
byte-identically), counter coherence under concurrency and client
disconnects, and the advance-op NaN/infinity regression.
"""

from __future__ import annotations

import asyncio
import io
import json
import math

import pytest

from repro import api
from repro.obs.metrics import (MetricsRegistry, histogram_quantile,
                               render_exposition)
from repro.obs.report import metrics_report
from repro.obs.trace import ScanTracer, read_trace, validate_trace
from repro.service.client import DaemonClient, trace_stream
from repro.service.daemon import (LIVENESS_LAG_MS, ServiceError,
                                  TraceService, start_service)
from repro.service.loadtest import run_loadtest
from repro.service.obs import (OUTCOMES, RateRing, RequestContext,
                               ServiceTelemetry, classify_slow_cause,
                               latency_summary)
from repro.service.top import render_frame, run_top
from repro.service.top import _top_loop


def _engine(prefixes=64, seed=20201027):
    return api.Engine.from_request(api.ScanRequest(prefixes=prefixes,
                                                   seed=seed))


def _destination(engine, offset=0):
    return f"20.0.{offset}.1"


async def _collect(service, payload):
    hops, terminal = [], None
    async for record in service.handle_trace(payload):
        if record["type"] == "hop":
            hops.append(record)
        else:
            terminal = record
    return hops, terminal


# --------------------------------------------------------------------- #
# Satellite 1: advance() must reject non-finite floats
# --------------------------------------------------------------------- #

class TestAdvanceValidation:
    @pytest.mark.parametrize("seconds", [float("nan"), float("inf"),
                                         float("-inf")])
    def test_non_finite_rejected_and_clock_unpoisoned(self, seconds):
        service = TraceService(_engine())
        with pytest.raises(ServiceError):
            service.advance(seconds)
        assert service.now == 0.0
        assert service.epoch == 0
        service.advance(5.0)  # still usable afterwards
        assert service.now == 5.0

    def test_negative_still_rejected(self):
        service = TraceService(_engine())
        with pytest.raises(ServiceError):
            service.advance(-1.0)

    def test_control_op_rejects_nan(self):
        service = TraceService(_engine())
        with pytest.raises(ServiceError):
            service.handle_control({"control": "advance",
                                    "seconds": float("nan")})
        assert service.now == 0.0

    def test_nan_over_the_wire_becomes_error_record(self):
        # Python's json module parses the non-standard NaN literal, so a
        # confused client *can* deliver one to the daemon; before the
        # fix it slipped past the `< 0` check and poisoned self.now for
        # the daemon's lifetime.
        async def run():
            handle = await start_service(_engine(), host="127.0.0.1",
                                         port=0)
            async with DaemonClient(host=handle.host,
                                    port=handle.port) as client:
                record = await client.control("advance",
                                              seconds=float("nan"))
                stats = await client.control("stats")
            await handle.close()
            return record, stats

        record, stats = asyncio.run(run())
        assert record["type"] == "error"
        assert "finite" in record["error"]
        assert stats["now"] == 0.0
        assert not math.isnan(stats["now"])


# --------------------------------------------------------------------- #
# Exposition renderer + histogram quantiles (repro.obs.metrics)
# --------------------------------------------------------------------- #

class TestExposition:
    def _snapshot(self):
        registry = MetricsRegistry()
        registry.inc("service.requests.total", 7)
        registry.set_gauge("service.inflight", 2)
        for value in (0.5, 3.0, 3.5, 40.0):
            registry.observe("service.latency_virtual_ms.fresh", value,
                             buckets=(1, 5, 10))
        return registry.snapshot()

    def test_renders_counters_gauges_histograms(self):
        text = render_exposition(self._snapshot())
        lines = text.splitlines()
        assert "# TYPE flashroute_service_requests_total counter" in lines
        assert "flashroute_service_requests_total 7" in lines
        assert "# TYPE flashroute_service_inflight gauge" in lines
        assert "flashroute_service_inflight 2" in lines
        base = "flashroute_service_latency_virtual_ms_fresh"
        # Cumulative buckets: <=1 holds 1, <=5 holds 3, <=10 still 3,
        # +Inf holds all 4 observations.
        assert f'{base}_bucket{{le="1"}} 1' in lines
        assert f'{base}_bucket{{le="5"}} 3' in lines
        assert f'{base}_bucket{{le="10"}} 3' in lines
        assert f'{base}_bucket{{le="+Inf"}} 4' in lines
        assert f"{base}_sum 47" in lines
        assert f"{base}_count 4" in lines
        assert text.endswith("\n")

    def test_deterministic_and_wall_ignored(self):
        snapshot = self._snapshot()
        snapshot["wall"] = {"elapsed_seconds": 1.23}
        assert render_exposition(snapshot) \
            == render_exposition(self._snapshot())
        assert "elapsed" not in render_exposition(snapshot)

    def test_quantile_nearest_rank(self):
        histogram = {"bounds": [1, 5, 10], "counts": [1, 2, 0, 1],
                     "count": 4, "sum": 47.0}
        assert histogram_quantile(histogram, 0.0) == 1.0
        assert histogram_quantile(histogram, 0.5) == 5.0
        # The overflow observation reports the last finite bound.
        assert histogram_quantile(histogram, 1.0) == 10.0

    def test_quantile_rejects_empty_and_out_of_range(self):
        with pytest.raises(ValueError):
            histogram_quantile({"bounds": [1], "counts": [0, 0],
                                "count": 0, "sum": 0.0}, 0.5)
        with pytest.raises(ValueError):
            histogram_quantile({"bounds": [1], "counts": [1, 0],
                                "count": 1, "sum": 0.5}, 1.5)


# --------------------------------------------------------------------- #
# Telemetry primitives
# --------------------------------------------------------------------- #

class TestPrimitives:
    def test_latency_summary(self):
        summary = latency_summary([5.0, 1.0, 3.0])
        assert summary == {"count": 3, "p50": 3.0, "p90": 5.0,
                           "p99": 5.0, "max": 5.0}

    @pytest.mark.parametrize("outcome,probes,cause", [
        ("coalesced", 0, "coalesce_wait"),
        ("error", 0, "error"),
        ("hit", 0, "cache_replay"),
        ("cancelled", 0, "client_disconnect"),
        ("fresh", 10, "cache_miss"),
        ("fresh", 100, "probe_count"),
    ])
    def test_classify_slow_cause(self, outcome, probes, cause):
        assert classify_slow_cause(outcome, probes) == cause

    def test_rate_ring_differences_counters(self):
        ring = RateRing(slots=10, min_interval=0.0)
        ring.sample(0.0, {"requests": 0, "cache_hits": 0,
                          "probes_sent": 0})
        ring.sample(2.0, {"requests": 20, "cache_hits": 5,
                          "probes_sent": 200})
        rates = ring.rates()
        assert rates["req_per_s"] == 10.0
        assert rates["probes_per_s"] == 100.0
        assert rates["hit_rate"] == 0.25
        assert rates["window_seconds"] == 2.0

    def test_rate_ring_min_interval_and_underflow(self):
        ring = RateRing(slots=10, min_interval=1.0)
        assert ring.sample(0.0, {"requests": 0}) is True
        assert ring.sample(0.5, {"requests": 1}) is False  # too soon
        assert len(ring) == 1
        assert "req_per_s" not in ring.rates()  # one sample: no rate
        with pytest.raises(ValueError):
            RateRing(slots=1)

    def test_request_context_flushes_valid_span_tree(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        tracer = ScanTracer(path=path)
        ctx = RequestContext(rid=1, vt_start=0.0, wall_start=0.0)
        ctx.phase("cache-lookup", 0.0)
        ctx.phase("probe-stream", 0.0)
        ctx.phase("respond", 1.0)
        ctx.flush(tracer, 1.0, outcome="fresh")
        tracer.close()
        events = read_trace(path)
        validate_trace(events)
        names = [event["name"] for event in events
                 if event.get("ev") == "begin"
                 and event["span"] == "service.phase"]
        assert names == ["receive", "cache-lookup", "probe-stream",
                         "respond"]
        root = [event for event in events if event.get("ev") == "begin"
                and event["span"] == "service.request"]
        assert root and root[0]["rid"] == 1


# --------------------------------------------------------------------- #
# TraceService + telemetry: counters, determinism, slow log
# --------------------------------------------------------------------- #

class TestServiceTelemetry:
    def _drive(self, telemetry):
        """A fixed request mix: 2 fresh, 1 hit, 2 coalesced, 1 error,
        1 cancelled."""
        async def run():
            service = TraceService(_engine(), telemetry=telemetry)
            await _collect(service, {"destination": _destination(
                service.engine, 0), "flow": 0})
            await _collect(service, {"destination": _destination(
                service.engine, 0), "flow": 0})  # hit
            payload = {"destination": _destination(service.engine, 1),
                       "flow": 0}
            await asyncio.gather(_collect(service, payload),
                                 _collect(service, payload),
                                 _collect(service, payload))
            await _collect(service, {"destination": "not-an-ip"})
            # A client that vanishes mid-stream: pull two records, then
            # abandon the generator (GeneratorExit inside handle_trace).
            stream = service.handle_trace(
                {"destination": _destination(service.engine, 2),
                 "flow": 0})
            await stream.__anext__()
            await stream.__anext__()
            await stream.aclose()
            await service.drain()
            return service

        return asyncio.run(run())

    def test_outcome_counters_are_coherent(self):
        telemetry = ServiceTelemetry()
        service = self._drive(telemetry)
        counters = telemetry.registry.snapshot()["counters"]
        total = counters["service.requests.total"]
        assert total == service.requests == 7
        assert total == sum(counters.get(f"service.requests.{outcome}", 0)
                            for outcome in OUTCOMES)
        assert counters["service.requests.fresh"] == 2
        assert counters["service.requests.hit"] == 1
        assert counters["service.requests.coalesced"] == 2
        assert counters["service.requests.error"] == 1
        assert counters["service.requests.cancelled"] == 1
        # The abandoned client's flight still ran to completion and its
        # probes were recorded once (flights own probes, not clients).
        assert counters["service.probes.sent"] == service.probes_sent > 0

    def test_request_ids_are_monotonic(self):
        telemetry = ServiceTelemetry(slow_ms=0.0)
        self._drive(telemetry)
        rids = [entry["rid"] for entry in telemetry.slow_requests]
        assert rids == sorted(rids)
        assert len(set(rids)) == len(rids)

    def test_same_virtual_clock_runs_snapshot_byte_identically(self):
        snapshots = []
        for _ in range(2):
            telemetry = ServiceTelemetry()
            service = self._drive(telemetry)
            snapshots.append(json.dumps(
                telemetry.metrics_snapshot(service), sort_keys=True))
        assert snapshots[0] == snapshots[1]

    def test_latency_histograms_record_virtual_time(self):
        async def run():
            telemetry = ServiceTelemetry()
            service = TraceService(_engine(), telemetry=telemetry)
            payload = {"destination": _destination(service.engine, 0),
                       "flow": 0}
            await _collect(service, payload)
            await _collect(service, payload)  # hit
            return telemetry

        telemetry = asyncio.run(run())
        histograms = telemetry.registry.snapshot()["histograms"]
        fresh = histograms["service.latency_virtual_ms.fresh"]
        assert fresh["count"] == 1
        assert fresh["sum"] > 0  # per-hop probe gaps in virtual ms
        hit = histograms["service.latency_virtual_ms.hit"]
        # A hit replays the cached trace: same virtual duration.
        assert hit["sum"] == pytest.approx(fresh["sum"])

    def test_slow_log_attributes_causes(self):
        telemetry = ServiceTelemetry(slow_ms=0.0)  # log everything
        self._drive(telemetry)
        assert telemetry.slow_total == 7
        causes = {entry["cause"] for entry in telemetry.slow_requests}
        assert causes == {"cache_miss", "cache_replay", "coalesce_wait",
                          "error", "client_disconnect"}
        for entry in telemetry.slow_requests:
            assert entry["wall_ms"] >= 0.0

    def test_wall_report_quarantines_wall_data(self):
        telemetry = ServiceTelemetry()
        service = self._drive(telemetry)
        snapshot = telemetry.metrics_snapshot(service)
        assert "wall" not in snapshot
        report = telemetry.wall_report()
        assert set(report["latency_ms"]) <= set(OUTCOMES)
        assert report["uptime_seconds"] >= 0.0

    def test_telemetry_off_yields_identical_records(self):
        async def run(telemetry):
            service = TraceService(_engine(), telemetry=telemetry)
            records = []
            for offset in (0, 1, 0):
                hops, terminal = await _collect(
                    service, {"destination":
                              _destination(service.engine, offset),
                              "flow": 0})
                records.append((hops, terminal))
            return records, service.stats()

        plain, plain_stats = asyncio.run(run(None))
        instrumented, obs_stats = asyncio.run(run(ServiceTelemetry()))
        assert plain == instrumented
        assert plain_stats == obs_stats


# --------------------------------------------------------------------- #
# metrics / health control ops
# --------------------------------------------------------------------- #

class TestControlOps:
    def test_metrics_requires_telemetry(self):
        service = TraceService(_engine())
        with pytest.raises(ServiceError, match="telemetry is disabled"):
            service.handle_control({"control": "metrics"})

    def test_metrics_op_shape(self):
        async def run():
            service = TraceService(_engine(),
                                   telemetry=ServiceTelemetry())
            await _collect(service, {"destination":
                                     _destination(service.engine, 0),
                                     "flow": 0})
            return service.handle_control({"control": "metrics"})

        record = asyncio.run(run())
        assert record["type"] == "metrics"
        counters = record["snapshot"]["counters"]
        assert counters["service.requests.total"] == 1
        assert record["snapshot"]["gauges"]["service.cache.entries"] == 1
        assert "flashroute_service_requests_total 1" in \
            record["exposition"]
        assert "slow_requests" in record["wall"]

    def test_health_ready_and_liveness_bound(self):
        telemetry = ServiceTelemetry()
        service = TraceService(_engine(), telemetry=telemetry)
        health = service.health()
        assert health["ready"] is True
        assert health["live"] is True  # no lag sample yet
        assert health["status"] == "ok"
        assert health["telemetry"] is True
        assert health["engine"]["warm"] is True
        assert health["engine"]["prefixes"] == 64
        telemetry.note_loop_lag(LIVENESS_LAG_MS + 1.0)
        degraded = service.health()
        assert degraded["live"] is False
        assert degraded["status"] == "degraded"

    def test_health_without_telemetry(self):
        health = TraceService(_engine()).health()
        assert health["ready"] is True
        assert health["telemetry"] is False
        assert health["loop_lag_ms"] is None


# --------------------------------------------------------------------- #
# Concurrent connections over the wire + trace JSONL validity
# --------------------------------------------------------------------- #

class TestConcurrentTracing:
    def test_interleaved_trace_and_control_stay_coherent(self, tmp_path):
        trace_path = str(tmp_path / "service_trace.jsonl")
        telemetry = ServiceTelemetry.create(trace_path=trace_path)

        async def one_connection(handle, offset):
            async with DaemonClient(host=handle.host,
                                    port=handle.port) as client:
                destination = _destination(handle.service.engine,
                                           offset % 3)
                await client.request({"destination": destination,
                                      "flow": 0})
                stats = await client.control("stats")
                assert stats["type"] == "stats"
                await client.request({"destination": destination,
                                      "flow": 0})
                health = await client.control("health")
                assert health["ready"] is True

        async def run():
            handle = await start_service(_engine(), host="127.0.0.1",
                                         port=0, telemetry=telemetry)
            await asyncio.gather(*(one_connection(handle, offset)
                                   for offset in range(8)))
            async with DaemonClient(host=handle.host,
                                    port=handle.port) as client:
                metrics = await client.control("metrics")
            await handle.close()
            return handle.service, metrics

        service, metrics = asyncio.run(run())
        telemetry.close()

        counters = metrics["snapshot"]["counters"]
        assert counters["service.requests.total"] == 16
        assert counters["service.requests.total"] == sum(
            counters.get(f"service.requests.{outcome}", 0)
            for outcome in OUTCOMES)
        assert counters.get("service.requests.error", 0) == 0
        assert service.requests == 16

        events = read_trace(trace_path)
        validate_trace(events)  # raises on malformed nesting
        roots = [event for event in events if event.get("ev") == "begin"
                 and event["span"] == "service.request"]
        assert len(roots) == 16
        rids = [root["rid"] for root in roots]
        assert sorted(rids) == list(range(1, 17))
        phases = {event["name"] for event in events
                  if event.get("ev") == "begin"
                  and event["span"] == "service.phase"}
        assert "receive" in phases and "respond" in phases
        assert {"cache-replay", "probe-stream"} <= phases


# --------------------------------------------------------------------- #
# top dashboard
# --------------------------------------------------------------------- #

class TestTopDashboard:
    _stats = {"requests": 10, "cache_hits": 4, "coalesced": 2,
              "errors": 0, "traces_started": 4, "probes_sent": 120,
              "cache_entries": 4, "cache_evicted_epoch": 0,
              "cache_evicted_lru": 0, "inflight": 1, "now": 4.0,
              "epoch": 0, "address_space": "20.0.0.0..20.0.63.255"}
    _health = {"ready": True, "live": True, "status": "ok",
               "loop_lag_ms": 0.4, "telemetry": True}

    def test_render_frame_with_telemetry(self):
        metrics = {
            "snapshot": {"counters": {"service.requests.fresh": 4}},
            "wall": {
                "uptime_seconds": 12.0,
                "rates": {"req_per_s": 5.0, "probes_per_s": 60.0,
                          "hit_rate": 0.4, "window_seconds": 2.0},
                "latency_ms": {"fresh": {"count": 4, "p50": 1.2,
                                         "p90": 2.0, "p99": 2.5,
                                         "max": 2.5}},
                "slow_threshold_ms": 1.0, "slow_total": 1,
                "slow_requests": [{"rid": 3, "outcome": "fresh",
                                   "destination": "20.0.1.1", "flow": 0,
                                   "wall_ms": 2.5, "virtual_ms": 580.0,
                                   "probes": 19, "cause": "cache_miss",
                                   "error": None}],
            },
        }
        text = render_frame("127.0.0.1:4792", 3, self._stats,
                            self._health, metrics)
        assert "5.0 req/s" in text
        assert "hit-rate 40.0%" in text
        assert "fresh" in text and "2.5" in text
        assert "cause=cache_miss" in text
        assert "status=ok" in text and "ready=yes" in text

    def test_render_frame_without_telemetry_degrades(self):
        health = dict(self._health, telemetry=False, loop_lag_ms=None)
        text = render_frame("d.sock", 1, self._stats, health, None,
                            fallback_rates={"req_per_s": 2.0,
                                            "probes_per_s": 10.0,
                                            "hit_rate": 0.5,
                                            "window_seconds": 1.0})
        assert "telemetry=off" in text
        assert "2.0 req/s" in text  # client-side fallback rates
        assert "restart with serve --telemetry" in text

    def test_live_dashboard_against_loopback_daemon(self):
        async def run():
            handle = await start_service(_engine(), host="127.0.0.1",
                                         port=0,
                                         telemetry=ServiceTelemetry())
            await trace_stream(
                {"destination": _destination(handle.service.engine, 0),
                 "flow": 0},
                host=handle.host, port=handle.port)
            buffer = io.StringIO()
            code = await _top_loop(handle.host, handle.port, None,
                                   interval=0.01, iterations=2,
                                   stream=buffer, clear=False)
            await handle.close()
            return code, buffer.getvalue()

        code, text = asyncio.run(run())
        assert code == 0
        assert text.count("flashroute-sim top") == 2
        assert "telemetry=on" in text
        assert "requests=1" in text

    def test_run_top_reports_unreachable_daemon(self, capsys):
        assert run_top(socket_path="/nonexistent/daemon.sock",
                       iterations=1, stream=io.StringIO()) == 1
        assert "cannot reach daemon" in capsys.readouterr().err


# --------------------------------------------------------------------- #
# Satellite 2: per-outcome latency breakdown in the load test
# --------------------------------------------------------------------- #

class TestLoadtestBreakdown:
    def test_report_splits_latency_by_outcome(self):
        report = run_loadtest(prefixes=64, clients=40, keys=6, flows=2,
                              telemetry=True)
        breakdown = report["latency_ms_by_outcome"]
        assert set(breakdown) <= {"fresh", "hit", "coalesced"}
        assert sum(row["count"] for row in breakdown.values()) \
            == report["clients"]
        for row in breakdown.values():
            assert row["p50"] <= row["p90"] <= row["p99"] <= row["max"]
        assert report["telemetry"] is True


# --------------------------------------------------------------------- #
# metrics-report --exposition
# --------------------------------------------------------------------- #

class TestMetricsReportExposition:
    def _write_snapshot(self, tmp_path):
        telemetry = ServiceTelemetry()

        async def run():
            service = TraceService(_engine(), telemetry=telemetry)
            await _collect(service, {"destination":
                                     _destination(service.engine, 0),
                                     "flow": 0})
            return service

        service = asyncio.run(run())
        path = str(tmp_path / "service_metrics.json")
        telemetry.save(path, service)
        return path

    def test_exposition_rendering(self, tmp_path):
        path = self._write_snapshot(tmp_path)
        text = metrics_report(path, exposition=True)
        assert "flashroute_service_requests_total 1" in text
        assert 'le="+Inf"' in text

    def test_exposition_refuses_diff(self, tmp_path):
        path = self._write_snapshot(tmp_path)
        with pytest.raises(ValueError, match="one snapshot"):
            metrics_report(path, path, exposition=True)

    def test_cli_flag(self, tmp_path, capsys):
        from repro.cli import main

        path = self._write_snapshot(tmp_path)
        assert main(["metrics-report", "--exposition", path]) == 0
        out = capsys.readouterr().out
        assert "# TYPE flashroute_service_requests_total counter" in out
