"""Property-based tests of cross-cutting invariants.

These use small, per-example topologies and scans, so hypothesis can vary
seeds and parameters freely.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.config import FlashRouteConfig, PreprobeMode
from repro.core.encoding import decode_response, encode_probe
from repro.core.prober import FlashRoute
from repro.core.targets import random_targets
from repro.net.checksum import addr_checksum
from repro.net.icmp import ResponseKind
from repro.simnet.config import TopologyConfig
from repro.simnet.network import SimulatedNetwork
from repro.simnet.topology import Topology

#: ``derandomize`` keeps the example set fixed across runs: some scan-level
#: properties hold with empirical tolerances (e.g. rate-limiting interplay
#: can let a leaner scan discover a handful more interfaces), and a random
#: rare draw tripping a tolerance would make CI flaky.
_slow = settings(max_examples=10, deadline=None, derandomize=True,
                 suppress_health_check=[HealthCheck.too_slow])


@st.composite
def topologies(draw):
    seed = draw(st.integers(min_value=0, max_value=10_000))
    size = draw(st.sampled_from([32, 64, 96]))
    return Topology(TopologyConfig(num_prefixes=size, seed=seed))


class TestTopologyProperties:
    @_slow
    @given(topologies())
    def test_stub_tiling(self, topology):
        covered = sum(stub.block_size for stub in topology.stubs)
        assert covered == topology.num_prefixes

    @_slow
    @given(topologies(), st.integers(min_value=0, max_value=2**16))
    def test_hop_at_is_deterministic(self, topology, flow):
        dst = (topology.base_prefix << 8) | 7
        for ttl in (1, 5, 12, 32):
            a = topology.hop_at(dst, ttl, flow=flow)
            b = topology.hop_at(dst, ttl, flow=flow)
            assert (a.kind, a.iface, a.residual_ttl) == \
                (b.kind, b.iface, b.residual_ttl)

    @_slow
    @given(topologies())
    def test_route_monotonicity(self, topology):
        """A probe that reaches the destination at TTL t also reaches it at
        every TTL above t (absent loops)."""
        from repro.simnet.entities import HopKind

        for offset in range(0, topology.num_prefixes, 11):
            record = topology.prefixes[offset]
            if not record.active_hosts:
                continue
            dst = ((topology.base_prefix + offset) << 8) | \
                min(record.active_hosts)
            reached = [topology.hop_at(dst, ttl).kind is HopKind.DESTINATION
                       for ttl in range(1, 33)]
            if True in reached:
                first = reached.index(True)
                assert all(reached[first:])


class TestNetworkProperties:
    @_slow
    @given(topologies(), st.integers(min_value=1, max_value=32))
    def test_response_quotes_probe_identity(self, topology, ttl):
        network = SimulatedNetwork(topology)
        dst = (topology.base_prefix << 8) | 9
        marking = encode_probe(dst, ttl, 0.0)
        response = network.send_probe(dst, ttl, 0.0, marking.src_port,
                                      ipid=marking.ipid,
                                      udp_length=marking.udp_length)
        if response is None:
            return
        decoded = decode_response(response)
        assert decoded.initial_ttl == ttl
        assert decoded.src_port == marking.src_port

    @_slow
    @given(topologies())
    def test_ttl_exceeded_responder_is_interface(self, topology):
        network = SimulatedNetwork(topology)
        known = set(topology.iface_addrs)
        for offset in range(0, topology.num_prefixes, 7):
            dst = ((topology.base_prefix + offset) << 8) | 50
            for ttl in (1, 3, 8):
                response = network.send_probe(dst, ttl, 0.0,
                                              addr_checksum(dst))
                if response is not None and \
                        response.kind is ResponseKind.TTL_EXCEEDED:
                    assert response.responder in known


class TestScanProperties:
    @_slow
    @given(topologies(),
           st.integers(min_value=1, max_value=32),
           st.integers(min_value=0, max_value=6),
           st.sampled_from(list(PreprobeMode)))
    def test_scan_invariants(self, topology, split, gap, preprobe):
        config = FlashRouteConfig(split_ttl=split, gap_limit=gap,
                                  preprobe=preprobe)
        targets = random_targets(topology, seed=1)
        result = FlashRoute(config).scan(SimulatedNetwork(topology),
                                         targets=targets)
        assert not result.aborted
        assert result.probes_sent >= len(targets) or gap == 0
        # Responses can never exceed probes.
        assert result.responses + result.mismatched_quotes <= \
            result.probes_sent
        # All discovered interfaces are real.
        assert result.interfaces() <= set(topology.iface_addrs)
        # No probe beyond max TTL.
        if result.ttl_probe_histogram:
            assert max(result.ttl_probe_histogram) <= config.max_ttl

    @_slow
    @given(topologies())
    def test_redundancy_removal_never_increases_probes(self, topology):
        targets = random_targets(topology, seed=1)
        on = FlashRoute(FlashRouteConfig(
            preprobe=PreprobeMode.NONE, redundancy_removal=True)).scan(
            SimulatedNetwork(topology), targets=targets)
        off = FlashRoute(FlashRouteConfig(
            preprobe=PreprobeMode.NONE, redundancy_removal=False)).scan(
            SimulatedNetwork(topology), targets=targets)
        assert on.probes_sent <= off.probes_sent
        # And what it finds is a subset of the exhaustive-ish variant plus
        # whatever alternate hops either saw.
        assert on.interface_count() <= off.interface_count() + 5
