"""Target selection: random representatives, hitlist, file loading."""

import pytest

from repro.core.targets import hitlist_targets, random_targets, targets_from_file
from repro.net.addr import int_to_ip


class TestRandomTargets:
    def test_one_per_prefix(self, small_topology):
        targets = random_targets(small_topology, seed=1)
        assert len(targets) == small_topology.num_prefixes
        for prefix, addr in targets.items():
            assert addr >> 8 == prefix

    def test_host_octet_in_valid_range(self, small_topology):
        for addr in random_targets(small_topology, seed=1).values():
            assert 1 <= addr & 0xFF <= 254

    def test_deterministic(self, small_topology):
        assert random_targets(small_topology, 5) == \
            random_targets(small_topology, 5)

    def test_seed_changes_draw(self, small_topology):
        assert random_targets(small_topology, 1) != \
            random_targets(small_topology, 2)

    def test_exclusion(self, small_topology):
        excluded = {small_topology.base_prefix}
        targets = random_targets(small_topology, 1, excluded=excluded)
        assert small_topology.base_prefix not in targets
        assert len(targets) == small_topology.num_prefixes - 1


class TestHitlistTargets:
    def test_one_per_prefix(self, small_topology):
        targets = hitlist_targets(small_topology)
        assert len(targets) == small_topology.num_prefixes

    def test_matches_synthesized_hitlist(self, small_topology):
        targets = hitlist_targets(small_topology)
        for offset, record in enumerate(small_topology.prefixes):
            prefix = small_topology.base_prefix + offset
            assert targets[prefix] & 0xFF == record.hitlist_host

    def test_hitlist_is_more_responsive_than_random(self, small_topology):
        hitlist = hitlist_targets(small_topology)
        rand = random_targets(small_topology, seed=1)
        hit_alive = sum(
            1 for addr in hitlist.values()
            if small_topology.destination_distance(addr) is not None)
        rand_alive = sum(
            1 for addr in rand.values()
            if small_topology.destination_distance(addr) is not None)
        assert hit_alive > rand_alive  # the bias the paper studies


class TestTargetsFromFile:
    def test_load(self, tmp_path):
        path = tmp_path / "targets.txt"
        path.write_text("20.0.0.5\n# comment\n\n20.0.1.9\n")
        targets = targets_from_file(str(path))
        assert len(targets) == 2
        assert int_to_ip(targets[20 << 16 | 0]) == "20.0.0.5"

    def test_one_address_per_prefix_last_wins(self, tmp_path):
        path = tmp_path / "targets.txt"
        path.write_text("20.0.0.5\n20.0.0.77\n")
        targets = targets_from_file(str(path))
        assert list(targets.values()) == [(20 << 24) | 77]

    def test_rejects_bad_address(self, tmp_path):
        path = tmp_path / "targets.txt"
        path.write_text("999.1.2.3\n")
        with pytest.raises(Exception):
            targets_from_file(str(path))
