"""The IPv6 extension: sparse DCB store, encoding, topology, scanner."""

import pytest

from repro.net.icmp import ResponseKind
from repro.v6 import (
    FlashRoute6,
    FlashRoute6Config,
    SimulatedNetwork6,
    SparseDCBStore,
    Topology6,
    TopologyConfig6,
    addr6_checksum,
    decode_payload6,
    destination_intact6,
    encode_probe6,
    exhaustive_scan6,
    flow_source_port6,
    rtt_ms6,
)
from repro.v6.encoding6 import Encoding6Error


@pytest.fixture(scope="module")
def topo6():
    return Topology6(TopologyConfig6(num_sites=48, seed=5))


@pytest.fixture(scope="module")
def seed_targets(topo6):
    return topo6.seed_targets()


class TestSparseStore:
    def _store(self, n=10, **kwargs):
        destinations = [(0x20010DB8 << 96) | (i << 64) | 0x42
                        for i in range(1, n + 1)]
        return SparseDCBStore(destinations, split_ttl=16, gap_limit=5,
                              **kwargs), destinations

    def test_one_block_per_subnet(self):
        store, destinations = self._store(5)
        assert len(store) == 5
        for dst in destinations:
            assert (dst >> 64) in store

    def test_duplicate_subnets_collapse(self):
        base = (1 << 64) | 5
        store = SparseDCBStore([base, base + 1, base + 2], 16, 5)
        assert len(store) == 1

    def test_o1_lookup_by_subnet(self):
        store, destinations = self._store(5)
        block = store.get(destinations[2] >> 64)
        assert block.destination == destinations[2]
        assert store.get(0xDEAD) is None

    def test_ring_is_shuffled_permutation(self):
        store, destinations = self._store(50)
        ring = list(store.iter_ring())
        assert sorted(ring) == sorted(dst >> 64 for dst in destinations)
        assert ring != sorted(ring)

    def test_remove_unlinks(self):
        store, destinations = self._store(5)
        ring = list(store.iter_ring())
        store.remove(ring[2])
        assert len(store) == 4
        assert list(store.iter_ring()) == ring[:2] + ring[3:]

    def test_remove_all(self):
        store, _dests = self._store(3)
        for key in list(store.iter_ring()):
            store.remove(key)
        assert len(store) == 0
        assert store.head is None

    def test_set_distance(self):
        store, destinations = self._store(3)
        key = destinations[0] >> 64
        store.set_distance(key, 9, gap_limit=5)
        block = store.get(key)
        assert block.split_ttl == 9
        assert block.next_backward == 9
        assert block.next_forward == 10
        assert block.forward_horizon == 14

    def test_memory_scales_with_targets_not_universe(self):
        small, _ = self._store(10)
        large, _ = self._store(1000)
        ratio = large.memory_footprint() / small.memory_footprint()
        assert 20 < ratio < 200  # linear in targets, nothing like 2^64

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            SparseDCBStore([], 16, 5)


class TestEncoding6:
    def test_round_trip(self):
        dst = (0x20010DB8 << 96) | 7
        marking = encode_probe6(dst, 17, send_time=3.5, is_preprobe=True)
        decoded = decode_payload6(marking.payload, dst, marking.src_port)
        assert decoded.initial_ttl == 17
        assert decoded.is_preprobe
        assert decoded.timestamp_ms == 3500
        assert destination_intact6(decoded)

    def test_rewrite_detected(self):
        dst = (0x20010DB8 << 96) | 7
        marking = encode_probe6(dst, 17, 0.0)
        decoded = decode_payload6(marking.payload, dst + 1, marking.src_port)
        assert not destination_intact6(decoded)

    def test_ttl_bounds(self):
        with pytest.raises(Encoding6Error):
            encode_probe6(1, 0, 0.0)
        with pytest.raises(Encoding6Error):
            encode_probe6(1, 64, 0.0)
        marking = encode_probe6(1, 63, 0.0)
        assert decode_payload6(marking.payload, 1,
                               marking.src_port).initial_ttl == 63

    def test_rtt_wraparound(self):
        dst = 5
        marking = encode_probe6(dst, 8, send_time=65.530)
        decoded = decode_payload6(marking.payload, dst, marking.src_port)
        assert rtt_ms6(decoded, 65.630) == pytest.approx(100.0)

    def test_ports_unprivileged(self):
        for addr in (0, 1, 2**127, 2**128 - 1):
            assert 1024 <= addr6_checksum(addr) <= 65535
            assert 1024 <= flow_source_port6(addr, 3) <= 65535

    def test_short_payload_rejected(self):
        with pytest.raises(Encoding6Error):
            decode_payload6(b"\x01", 1, 1)


class TestTopology6:
    def test_sparse_subnet_numbering(self, topo6):
        # Announced /64 subnet ids are scattered, not 0..k.
        for site in topo6.sites:
            subnet_ids = [record.subnet & 0xFFFF
                          for record in topo6.subnets.values()
                          if record.site_id == site.site_id]
            if len(subnet_ids) >= 3:
                assert max(subnet_ids) - min(subnet_ids) >= len(subnet_ids)
                break

    def test_seed_targets_one_per_subnet(self, topo6, seed_targets):
        assert len(seed_targets) == len(topo6.subnets)
        for subnet, target in seed_targets.items():
            assert target >> 64 == subnet

    def test_route_structure(self, topo6, seed_targets):
        subnet, target = next(iter(seed_targets.items()))
        record = topo6.subnets[subnet]
        site = topo6.sites[record.site_id]
        assert topo6.hop_iface_at(target, site.border_depth) == \
            site.border_iface
        assert topo6.hop_iface_at(target, site.border_depth + 1) == \
            record.router_iface
        assert topo6.hop_iface_at(target, site.border_depth + 2) is None

    def test_destination_distance(self, topo6, seed_targets):
        for subnet, target in seed_targets.items():
            record = topo6.subnets[subnet]
            distance = topo6.destination_distance(target)
            if record.target_responds:
                site = topo6.sites[record.site_id]
                assert distance == site.border_depth + 2
            else:
                assert distance is None

    def test_unknown_subnet_is_off_route(self, topo6):
        assert topo6.hop_iface_at(0xDEAD << 64, 5) is None

    def test_deterministic(self):
        a = Topology6(TopologyConfig6(num_sites=16, seed=9))
        b = Topology6(TopologyConfig6(num_sites=16, seed=9))
        assert a.iface_addrs == b.iface_addrs
        assert a.seed_targets() == b.seed_targets()


class TestFlashRoute6:
    @pytest.fixture(scope="class")
    def scan6(self, topo6, seed_targets):
        return FlashRoute6(FlashRoute6Config()).scan(
            SimulatedNetwork6(topo6), targets=seed_targets)

    @pytest.fixture(scope="class")
    def exhaustive6(self, topo6, seed_targets):
        return exhaustive_scan6(SimulatedNetwork6(topo6),
                                targets=seed_targets)

    def test_completes(self, scan6):
        assert not scan6.aborted
        assert scan6.granularity == 64

    def test_interfaces_are_real(self, scan6, topo6):
        assert scan6.interfaces() <= set(topo6.iface_addrs)

    def test_probe_savings(self, scan6, exhaustive6):
        """The v4 headline transfers: far fewer probes, same discovery."""
        assert scan6.probes_sent < 0.55 * exhaustive6.probes_sent
        assert scan6.interface_count() >= 0.97 * exhaustive6.interface_count()

    def test_exhaustive_probe_count_exact(self, exhaustive6, seed_targets):
        assert exhaustive6.probes_sent == 32 * len(seed_targets)

    def test_destination_distances_true(self, scan6, topo6, seed_targets):
        for subnet, measured in scan6.dest_distance.items():
            assert measured == topo6.destination_distance(
                seed_targets[subnet])

    def test_preprobe_sets_split_points(self, topo6, seed_targets):
        with_pre = FlashRoute6(FlashRoute6Config(preprobe=True)).scan(
            SimulatedNetwork6(topo6), targets=seed_targets)
        without = FlashRoute6(FlashRoute6Config(preprobe=False)).scan(
            SimulatedNetwork6(topo6), targets=seed_targets)
        assert with_pre.preprobe_probes == len(seed_targets)
        assert without.preprobe_probes == 0

    def test_redundancy_removal_saves(self, topo6, seed_targets):
        on = FlashRoute6(FlashRoute6Config(preprobe=False)).scan(
            SimulatedNetwork6(topo6), targets=seed_targets)
        off = FlashRoute6(FlashRoute6Config(
            preprobe=False, redundancy_removal=False)).scan(
            SimulatedNetwork6(topo6), targets=seed_targets)
        assert on.probes_sent < off.probes_sent

    def test_requires_targets(self, topo6):
        with pytest.raises(ValueError):
            FlashRoute6().scan(SimulatedNetwork6(topo6), targets={})

    def test_config_validation(self):
        with pytest.raises(ValueError):
            FlashRoute6Config(max_ttl=64)
        with pytest.raises(ValueError):
            FlashRoute6Config(split_ttl=0)
        with pytest.raises(ValueError):
            FlashRoute6Config(probing_rate=0)
