"""Discovery-optimized mode (§5.2)."""

import pytest

from repro.core.config import FlashRouteConfig
from repro.core.discovery import run_discovery_optimized
from repro.core.prober import FlashRoute
from repro.simnet.network import SimulatedNetwork


@pytest.fixture(scope="module")
def discovery(tiny_topology, tiny_targets):
    return run_discovery_optimized(SimulatedNetwork(tiny_topology),
                                   extra_scans=3, targets=tiny_targets)


class TestDiscoveryOptimized:
    def test_runs_requested_extra_scans(self, discovery):
        assert len(discovery.extras) == 3

    def test_union_at_least_main(self, discovery):
        assert set(discovery.main.interfaces()) <= set(discovery.interfaces())

    def test_extras_cheaper_than_main(self, discovery):
        """Extra scans share the stop set, so each costs far fewer probes
        than the main scan (paper: 3 extra scans fit in the saved time)."""
        for extra in discovery.extras:
            assert extra.probes_sent < discovery.main.probes_sent * 0.8
        # Aggregate: main + 3 extras stays well under 4x one scan (the
        # paper fits a main scan and 3 extras in ~2x the main scan's time).
        assert discovery.total_probes() < 3.5 * discovery.main.probes_sent

    def test_finds_load_balancer_alternates(self, tiny_topology, discovery):
        """Port-varied extra scans must reveal alternative diamond branches
        the single-flow main scan cannot see."""
        members = {tiny_topology.iface_addrs[m]
                   for group in tiny_topology.lb_groups
                   for branch in group for m in branch}
        main_alternates = discovery.main.interfaces() & members
        union_alternates = set(discovery.interfaces()) & members
        assert len(union_alternates) >= len(main_alternates)
        # With 3 extra flows over the tiny topology we expect strictly more.
        if len(members) >= 6:
            assert len(union_alternates) > len(main_alternates)

    def test_total_accounting(self, discovery):
        assert discovery.total_probes() == sum(
            scan.probes_sent for scan in discovery.all_scans())
        assert discovery.total_duration() == pytest.approx(sum(
            scan.duration for scan in discovery.all_scans()))

    def test_summary_mentions_scan_count(self, discovery):
        assert "1+3" in discovery.summary()


class TestOptions:
    def test_zero_extra_scans(self, tiny_topology, tiny_targets):
        result = run_discovery_optimized(SimulatedNetwork(tiny_topology),
                                         extra_scans=0, targets=tiny_targets)
        assert result.extras == []
        assert result.interfaces() == frozenset(result.main.interfaces())

    def test_rejects_negative_extra_scans(self, tiny_topology, tiny_targets):
        with pytest.raises(ValueError):
            run_discovery_optimized(SimulatedNetwork(tiny_topology),
                                    extra_scans=-1, targets=tiny_targets)

    def test_length_guided_policy_runs(self, tiny_topology, tiny_targets):
        result = run_discovery_optimized(SimulatedNetwork(tiny_topology),
                                         extra_scans=1, targets=tiny_targets,
                                         length_guided=True)
        assert len(result.extras) == 1

    def test_extra_scans_use_distinct_ports(self, tiny_topology,
                                            tiny_targets):
        """Each extra scan's probes carry source port base + i (§5.2)."""
        from repro.net.checksum import flow_source_port

        network = SimulatedNetwork(tiny_topology)
        result = run_discovery_optimized(network, extra_scans=2,
                                         targets=tiny_targets)
        # The scan_offset is recorded in the config used; verify by
        # re-deriving the flows the network saw through mismatch counters:
        # all responses validated, so ports matched offsets 0..2.
        for scan in result.all_scans():
            # Rewrite middleboxes legitimately cause a few mismatches; on a
            # 128-prefix space one affected stub is a visible fraction.
            assert scan.mismatched_quotes <= scan.responses * 0.05
