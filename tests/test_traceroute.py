"""Classic sequential traceroute: the Fig. 3 reference tool."""

import pytest

from repro.baselines.traceroute import ClassicTraceroute
from repro.simnet.network import SimulatedNetwork

from conftest import first_prefix_with


@pytest.fixture()
def tracer(tiny_topology):
    return ClassicTraceroute(SimulatedNetwork(tiny_topology))


def _responsive_prefix(topo):
    return first_prefix_with(
        topo, lambda record, stub: bool(record.active_hosts)
        and not record.flap and not stub.ttl_reset)


class TestTrace:
    def test_triggering_ttl_equals_true_distance(self, tiny_topology, tracer):
        prefix = _responsive_prefix(tiny_topology)
        record = tiny_topology.prefixes[prefix - tiny_topology.base_prefix]
        dst = (prefix << 8) | min(record.active_hosts)
        result = tracer.trace(dst)
        assert result.triggering_ttl == \
            tiny_topology.destination_distance(dst)

    def test_residual_distance_agrees(self, tiny_topology, tracer):
        prefix = _responsive_prefix(tiny_topology)
        record = tiny_topology.prefixes[prefix - tiny_topology.base_prefix]
        dst = (prefix << 8) | min(record.active_hosts)
        result = tracer.trace(dst)
        assert result.residual_distance == result.triggering_ttl

    def test_stops_at_destination(self, tiny_topology, tracer):
        prefix = _responsive_prefix(tiny_topology)
        record = tiny_topology.prefixes[prefix - tiny_topology.base_prefix]
        dst = (prefix << 8) | min(record.active_hosts)
        result = tracer.trace(dst)
        assert result.probes == result.triggering_ttl

    def test_unresponsive_target_probes_everything(self, tiny_topology,
                                                   tracer):
        prefix = first_prefix_with(
            tiny_topology, lambda record, stub: not record.active_hosts
            and not stub.host_unreachable and 233 not in record.special_hosts)
        dst = (prefix << 8) | 233
        result = tracer.trace(dst)
        assert result.triggering_ttl is None
        assert result.probes == 32

    def test_hops_are_true_interfaces(self, tiny_topology, tracer):
        prefix = _responsive_prefix(tiny_topology)
        record = tiny_topology.prefixes[prefix - tiny_topology.base_prefix]
        dst = (prefix << 8) | min(record.active_hosts)
        result = tracer.trace(dst)
        truth = tiny_topology.true_route(
            dst, flow=__import__("repro.net.checksum",
                                 fromlist=["addr_checksum"]).addr_checksum(dst))
        for ttl, responder in result.hops.items():
            assert truth[ttl - 1] == responder

    def test_clock_advances(self, tiny_topology, tracer):
        prefix = _responsive_prefix(tiny_topology)
        dst = (prefix << 8) | 1
        before = tracer.clock.now
        tracer.trace(dst)
        assert tracer.clock.now > before

    def test_max_ttl_truncates(self, tiny_topology):
        tracer = ClassicTraceroute(SimulatedNetwork(tiny_topology), max_ttl=4)
        prefix = _responsive_prefix(tiny_topology)
        dst = (prefix << 8) | 1
        assert tracer.trace(dst).probes <= 4

    def test_rejects_bad_max_ttl(self, tiny_topology):
        with pytest.raises(ValueError):
            ClassicTraceroute(SimulatedNetwork(tiny_topology), max_ttl=0)

    def test_start_time_shifts_epoch(self):
        """A traceroute started in an odd epoch sees flapped routes."""
        from repro.simnet.config import TopologyConfig
        from repro.simnet.topology import Topology

        topo = Topology(TopologyConfig(num_prefixes=256, seed=9,
                                       route_flap_probability=0.6,
                                       stub_active_probability=0.9))
        prefix = first_prefix_with(
            topo, lambda record, stub: record.flap
            and bool(record.active_hosts) and not stub.ttl_reset)
        record = topo.prefixes[prefix - topo.base_prefix]
        dst = (prefix << 8) | min(record.active_hosts)
        epoch_len = topo.config.flap_epoch_seconds
        early = ClassicTraceroute(SimulatedNetwork(topo)).trace(dst)
        late = ClassicTraceroute(SimulatedNetwork(topo),
                                 start_time=epoch_len * 1.1).trace(dst)
        assert late.triggering_ttl == early.triggering_ttl + 1
