"""Cross-tool metric helpers."""

import pytest

from repro.analysis.metrics import (
    comparison_rows,
    coverage_against_topology,
    describe,
    interface_depth_histogram,
    missed_interfaces,
    route_length_distribution,
    speedup_summary,
    targets_probed_per_ttl,
)
from repro.core.config import FlashRouteConfig
from repro.core.prober import FlashRoute
from repro.core.results import ScanResult
from repro.simnet.network import SimulatedNetwork


def _result():
    result = ScanResult(tool="t", num_targets=2)
    result.targets = {100: (100 << 8) | 1, 101: (101 << 8) | 2}
    result.add_hop(100, 1, 0xAA)
    result.add_hop(100, 2, 0xBB)
    result.add_hop(101, 1, 0xAA)
    result.record_destination(100, 3)
    result.probes_sent = 10
    result.duration = 5.0
    result.ttl_probe_histogram.update({1: 2, 2: 1})
    return result


class TestHistograms:
    def test_interface_depth_uses_shallowest(self):
        result = _result()
        result.add_hop(101, 5, 0xBB)  # 0xBB also seen deeper
        histogram = interface_depth_histogram(result)
        assert histogram == {1: 1, 2: 1}

    def test_targets_probed_per_ttl(self):
        assert targets_probed_per_ttl(_result()) == {1: 2, 2: 1}

    def test_route_length_distribution(self):
        lengths = route_length_distribution(_result())
        assert lengths == {3: 1, 1: 1}


class TestComparison:
    def test_rows(self):
        rows = comparison_rows([_result()])
        assert rows[0]["tool"] == "t"
        assert rows[0]["interfaces"] == 2

    def test_missed_interfaces(self):
        a = _result()
        b = ScanResult(tool="b")
        b.add_hop(100, 1, 0xAA)
        assert missed_interfaces(b, a) == {0xBB}

    def test_speedup_summary(self):
        fast = _result()
        slow = ScanResult(tool="slow", num_targets=2)
        slow.probes_sent = 40
        slow.duration = 20.0
        slow.add_hop(100, 1, 0xAA)
        summary = speedup_summary(fast, slow)
        assert summary["time_ratio"] == pytest.approx(4.0)
        assert summary["probe_ratio"] == pytest.approx(4.0)
        assert summary["interface_ratio"] == pytest.approx(2.0)

    def test_describe(self):
        text = describe([_result(), _result()])
        assert text.count("t:") == 2


class TestCoverage:
    def test_scan_covers_most_reachable(self, tiny_topology, tiny_targets):
        scan = FlashRoute(FlashRouteConfig.yarrp32_udp_simulation()).scan(
            SimulatedNetwork(tiny_topology), targets=tiny_targets)
        coverage = coverage_against_topology(scan, tiny_topology)
        # The denominator is a loose upper bound: it includes LB alternates
        # and the interiors of every active prefix, which a single scan of
        # one (usually unassigned) random address per /24 cannot traverse.
        assert 0.15 < coverage <= 1.0
