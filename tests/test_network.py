"""SimulatedNetwork probe semantics: responses, silence, dynamics."""

import pytest

from repro.net.checksum import addr_checksum
from repro.net.icmp import ResponseKind
from repro.net.packets import PROTO_TCP
from repro.simnet.config import TopologyConfig
from repro.simnet.network import SimulatedNetwork
from repro.simnet.topology import Topology

from conftest import first_prefix_with


def probe(network, dst, ttl, t=0.0, proto=None, src_port=None, flow=None):
    kwargs = {}
    if proto is not None:
        kwargs["proto"] = proto
    if flow is not None:
        kwargs["flow"] = flow
    return network.send_probe(
        dst, ttl, t, src_port if src_port is not None else addr_checksum(dst),
        **kwargs)


class TestBasics:
    def test_counts_probes(self, network, small_topology):
        dst = (small_topology.base_prefix << 8) | 9
        probe(network, dst, 1)
        probe(network, dst, 2)
        assert network.probes_sent == 2

    def test_ttl1_always_answers(self, network, small_topology):
        dst = (small_topology.base_prefix << 8) | 9
        response = probe(network, dst, 1)
        assert response is not None
        assert response.kind is ResponseKind.TTL_EXCEEDED

    def test_quotes_the_probe(self, network, small_topology):
        dst = (small_topology.base_prefix << 8) | 9
        response = network.send_probe(dst, 1, 0.0, 4242, ipid=0x1234,
                                      udp_length=30)
        assert response.quoted.dst == dst
        assert response.quoted.ipid == 0x1234
        assert response.quoted.src_port == 4242
        assert response.quoted.udp_length == 30

    def test_arrival_after_send(self, network, small_topology):
        dst = (small_topology.base_prefix << 8) | 9
        response = probe(network, dst, 1, t=5.0)
        assert response.arrival_time > 5.0

    def test_deeper_hops_arrive_later(self, network, small_topology):
        topo = small_topology
        prefix = first_prefix_with(
            topo, lambda record, stub: stub.gateway_depth >= 7
            and all(token >= 0 and topo.udp_resp[token]
                    for token in stub.transit[:4]))
        dst = (prefix << 8) | 9
        shallow = probe(network, dst, 1)
        deep = probe(network, dst, 4)
        assert deep.arrival_time - 0.0 > shallow.arrival_time - 0.0

    def test_active_host_port_unreachable(self, network, small_topology):
        topo = small_topology
        prefix = first_prefix_with(
            topo, lambda record, stub: bool(record.active_hosts)
            and not record.flap and not stub.ttl_reset and not stub.rewrite)
        record = topo.prefixes[prefix - topo.base_prefix]
        dst = (prefix << 8) | min(record.active_hosts)
        response = probe(network, dst, 32)
        assert response.kind is ResponseKind.PORT_UNREACHABLE
        assert response.responder == dst

    def test_unassigned_probe_past_last_hop_is_silent(self, network,
                                                      small_topology):
        topo = small_topology
        prefix = first_prefix_with(
            topo, lambda record, stub: not record.active_hosts
            and not stub.loop_unassigned and not stub.host_unreachable
            and not record.flap and not stub.ttl_reset
            and 222 not in record.special_hosts)
        record = topo.prefixes[prefix - topo.base_prefix]
        stub = topo.stubs[record.stub_id]
        dst = (prefix << 8) | 222
        dest_depth = stub.gateway_depth + len(record.internal_ifaces) + 1
        assert probe(network, dst, dest_depth) is None
        assert probe(network, dst, dest_depth + 2) is None

    def test_silent_router_never_answers(self, network, small_topology):
        topo = small_topology
        found = None
        for stub in topo.stubs:
            for depth, token in enumerate(stub.transit, start=1):
                if token >= 0 and not topo.udp_resp[token]:
                    found = (stub, depth)
                    break
            if found:
                break
        if not found:
            pytest.skip("no silent transit router in this topology draw")
        stub, depth = found
        dst = ((topo.base_prefix + stub.first_offset) << 8) | 9
        assert probe(network, dst, depth) is None


class TestProtocols:
    def test_tcp_silent_router_subset(self, small_topology):
        # A router that ignores TCP but answers UDP must exist and behave so.
        topo = small_topology
        for stub in topo.stubs:
            for depth, token in enumerate(stub.transit, start=1):
                if token >= 0 and topo.udp_resp[token] and not topo.tcp_resp[token]:
                    dst = ((topo.base_prefix + stub.first_offset) << 8) | 9
                    network = SimulatedNetwork(topo)
                    assert probe(network, dst, depth) is not None
                    assert probe(network, dst, depth, proto=PROTO_TCP) is None
                    return
        pytest.skip("no TCP-silent router in this draw")

    def test_tcp_rst_from_host(self, small_topology):
        topo = small_topology
        network = SimulatedNetwork(topo)
        rst_seen = none_seen = 0
        for offset, record in enumerate(topo.prefixes):
            if not record.active_hosts:
                continue
            stub = topo.stubs[record.stub_id]
            if stub.ttl_reset or record.flap:
                continue
            dst = ((topo.base_prefix + offset) << 8) | min(record.active_hosts)
            response = probe(network, dst, 32, proto=PROTO_TCP)
            if response is None:
                none_seen += 1
            else:
                assert response.kind is ResponseKind.TCP_RST
                rst_seen += 1
        assert rst_seen > 0
        assert none_seen > 0  # some hosts ignore TCP-ACK (host_tcp_rst < 1)


class TestRateLimiting:
    def test_limit_enforced_per_second(self, small_topology):
        network = SimulatedNetwork(small_topology, rate_limit=10)
        dst = (small_topology.base_prefix << 8) | 9
        answered = sum(
            1 for _ in range(50)
            if probe(network, dst, 1, t=0.100) is not None)
        assert answered == 10
        assert network.rate_limiter.dropped == 40

    def test_limit_resets_each_second(self, small_topology):
        network = SimulatedNetwork(small_topology, rate_limit=5)
        dst = (small_topology.base_prefix << 8) | 9
        for _ in range(10):
            probe(network, dst, 1, t=0.1)
        assert probe(network, dst, 1, t=1.5) is not None

    def test_overprobed_interface_recorded(self, small_topology):
        network = SimulatedNetwork(small_topology, rate_limit=2)
        dst = (small_topology.base_prefix << 8) | 9
        for _ in range(5):
            probe(network, dst, 1, t=0.0)
        assert len(network.rate_limiter.overprobed_interfaces) == 1


class TestRewrite:
    def test_rewrite_stub_mismatches_quote(self):
        config = TopologyConfig(num_prefixes=256, seed=21,
                                rewrite_middlebox_probability=0.5,
                                stub_active_probability=0.9)
        topo = Topology(config)
        network = SimulatedNetwork(topo)
        prefix = first_prefix_with(
            topo, lambda record, stub: stub.rewrite
            and bool(record.active_hosts) and not stub.ttl_reset)
        record = topo.prefixes[prefix - topo.base_prefix]
        dst = (prefix << 8) | min(record.active_hosts)
        response = probe(network, dst, 32)
        assert response is not None
        assert response.quoted.dst != dst
        assert response.quoted.dst >> 8 == dst >> 8  # same /24
        assert network.rewritten_responses >= 1


class TestEpochDynamics:
    def test_flap_changes_responses_across_epochs(self, small_topology):
        topo = small_topology
        prefix = first_prefix_with(
            topo, lambda record, stub: record.flap
            and bool(record.active_hosts) and not stub.ttl_reset)
        record = topo.prefixes[prefix - topo.base_prefix]
        dst = (prefix << 8) | min(record.active_hosts)
        network = SimulatedNetwork(topo)
        epoch_len = topo.config.flap_epoch_seconds
        even = probe(network, dst, 32, t=0.0)
        odd = probe(network, dst, 32, t=epoch_len * 1.5)
        assert even.quoted_residual_ttl == odd.quoted_residual_ttl + 1


class TestReset:
    def test_reset_clears_counters(self, small_topology):
        network = SimulatedNetwork(small_topology, rate_limit=1)
        dst = (small_topology.base_prefix << 8) | 9
        probe(network, dst, 1)
        probe(network, dst, 1)
        network.reset()
        assert network.probes_sent == 0
        assert network.rate_limiter.dropped == 0
        assert probe(network, dst, 1) is not None
