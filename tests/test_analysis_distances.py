"""Distance accuracy analysis (Figs. 3-4 machinery)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.distances import (
    difference_distribution,
    full_prediction_coverage,
    measurement_accuracy,
    prediction_accuracy,
    prediction_neighbourhood_coverage,
)


class TestDifferenceDistribution:
    def test_exact_match(self):
        dist = difference_distribution({1: 10, 2: 12}, {1: 10, 2: 12})
        assert dist.fraction_exact() == 1.0
        assert dist.samples == 2

    def test_off_by_one(self):
        dist = difference_distribution({1: 11}, {1: 10})
        assert dist.pdf == {1: 1.0}
        assert dist.fraction_exact() == 0.0
        assert dist.fraction_within(1) == 1.0

    def test_only_common_keys_count(self):
        dist = difference_distribution({1: 10, 2: 12}, {1: 10, 9: 9})
        assert dist.samples == 1

    def test_empty(self):
        dist = difference_distribution({}, {1: 5})
        assert dist.samples == 0
        assert dist.pdf == {}
        assert dist.fraction_exact() == 0.0

    def test_cdf_monotone_to_one(self):
        dist = difference_distribution({1: 10, 2: 11, 3: 15},
                                       {1: 10, 2: 10, 3: 10})
        cdf = dist.cdf()
        values = [cdf[k] for k in sorted(cdf)]
        assert values == sorted(values)
        assert values[-1] == pytest.approx(1.0)

    @given(st.dictionaries(st.integers(0, 50), st.integers(1, 32),
                           min_size=1, max_size=30))
    def test_pdf_sums_to_one(self, reference):
        candidate = {k: max(1, v - 1) for k, v in reference.items()}
        dist = difference_distribution(reference, candidate)
        assert sum(dist.pdf.values()) == pytest.approx(1.0)


class TestMeasurementAccuracy:
    def test_direction_is_reference_minus_candidate(self):
        dist = measurement_accuracy(measured={1: 10}, triggering={1: 13})
        assert dist.pdf == {3: 1.0}


class TestPredictionAccuracy:
    def test_perfect_neighbours(self):
        measured = {i: 15 for i in range(10)}
        dist = prediction_accuracy(measured, proximity_span=5,
                                   num_prefixes=10)
        assert dist.fraction_exact() == 1.0

    def test_isolated_measurements_unpredictable(self):
        measured = {0: 10, 50: 20}
        dist = prediction_accuracy(measured, proximity_span=5,
                                   num_prefixes=100)
        assert dist.samples == 0

    def test_uses_external_reference(self):
        measured = {0: 10, 1: 10}
        reference = {0: 12, 1: 12}
        dist = prediction_accuracy(measured, 5, 10, reference=reference)
        # predictions are 10, reference 12 -> diff -2
        assert dist.pdf == {-2: 1.0}

    def test_leave_one_out_excludes_self(self):
        # Two adjacent blocks with different distances can never predict
        # themselves exactly.
        measured = {0: 10, 1: 20}
        dist = prediction_accuracy(measured, 5, 10)
        assert dist.fraction_exact() == 0.0


class TestCoverage:
    def test_neighbourhood_coverage(self):
        assert prediction_neighbourhood_coverage({0: 5, 1: 5}, 5) == 1.0
        assert prediction_neighbourhood_coverage({0: 5, 50: 5}, 5) == 0.0
        assert prediction_neighbourhood_coverage({}, 5) == 0.0

    def test_full_coverage(self):
        # One measurement covers itself plus span on each side.
        assert full_prediction_coverage({10: 5}, 100, 5) == \
            pytest.approx(11 / 100)

    def test_full_coverage_caps_at_one(self):
        measured = {i: 5 for i in range(10)}
        assert full_prediction_coverage(measured, 10, 5) == 1.0
