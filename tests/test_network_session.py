"""Per-session network views (``SimulatedNetwork.open_session``).

The service daemon holds one warm network and runs many concurrent trace
sessions over it, each on its own virtual clock.  These tests pin the
session contract: interleaving two sessions' probes produces, for each
session, byte-identical responses to running the sessions back to back —
and demonstrate why a bare shared network cannot promise that (shared
one-second rate-limiter bins).
"""

import pytest

from repro.simnet.config import TopologyConfig
from repro.simnet.faults import FaultModel
from repro.simnet.network import SimulatedNetwork
from repro.simnet.topology import Topology


def _topology(**overrides):
    return Topology(TopologyConfig(num_prefixes=64, seed=20201027,
                                   **overrides))


def _probe_script(topology, salt):
    """A deterministic per-session probe schedule: every prefix's .1
    address, TTLs 1..8, paced 2 ms apart on the session's own clock."""
    probes = []
    now = 0.0
    for index, prefix in enumerate(topology.scanned_prefixes()):
        dst = (prefix << 8) | 1
        for ttl in range(1, 9):
            probes.append((dst, ttl, now, 30000 + ((index + salt) % 256)))
            now += 0.002
    return probes


def _transcript_entry(response):
    if response is None:
        return None
    return (response.kind.value, response.responder,
            response.arrival_time, response.quoted_residual_ttl)


def _run_script(session, probes):
    return [_transcript_entry(session.send_probe(dst, ttl, now, port))
            for dst, ttl, now, port in probes]


def _run_interleaved(session_a, probes_a, session_b, probes_b):
    """Alternate probes between two sessions, preserving each session's
    own schedule, and return the two per-session transcripts."""
    out_a, out_b = [], []
    iter_a, iter_b = iter(probes_a), iter(probes_b)
    while True:
        stepped = False
        for source, session, out in ((iter_a, session_a, out_a),
                                     (iter_b, session_b, out_b)):
            probe = next(source, None)
            if probe is not None:
                dst, ttl, now, port = probe
                out.append(_transcript_entry(
                    session.send_probe(dst, ttl, now, port)))
                stepped = True
        if not stepped:
            return out_a, out_b


class TestSessionIsolation:
    def test_interleaved_sessions_match_sequential(self):
        topology = _topology()
        warm = SimulatedNetwork(topology)
        probes_a = _probe_script(topology, salt=0)
        probes_b = _probe_script(topology, salt=7)

        sequential_a = _run_script(warm.open_session(), probes_a)
        sequential_b = _run_script(warm.open_session(), probes_b)

        inter_a, inter_b = _run_interleaved(
            warm.open_session(), probes_a, warm.open_session(), probes_b)
        assert inter_a == sequential_a
        assert inter_b == sequential_b

    def test_interleaved_sessions_match_under_faults(self):
        topology = _topology()
        warm = SimulatedNetwork(topology)
        faults = FaultModel(probe_loss=0.1, response_loss=0.1, seed=13)
        probes_a = _probe_script(topology, salt=0)
        probes_b = _probe_script(topology, salt=3)

        sequential_a = _run_script(warm.open_session(faults=faults),
                                   probes_a)
        sequential_b = _run_script(warm.open_session(faults=faults),
                                   probes_b)
        inter_a, inter_b = _run_interleaved(
            warm.open_session(faults=faults), probes_a,
            warm.open_session(faults=faults), probes_b)
        assert inter_a == sequential_a
        assert inter_b == sequential_b

    def test_shared_bare_network_is_perturbed(self):
        """The bug the session view fixes: two scans sharing one network
        fill each other's one-second rate-limiter bins."""
        topology = _topology()
        probes = _probe_script(topology, salt=0)

        reference = _run_script(
            SimulatedNetwork(topology, rate_limit=1), probes)
        shared = SimulatedNetwork(topology, rate_limit=1)
        # Same schedule replayed twice through ONE network: the second
        # pass re-probes the same interfaces in the same virtual seconds,
        # so the shared bins drop responses a fresh scan would get.
        first = _run_script(shared, probes)
        second = _run_script(shared, probes)
        assert first == reference
        assert second != reference

        # Sessions over a warm core do not interact.
        warm = SimulatedNetwork(topology)
        first = _run_script(warm.open_session(rate_limit=1), probes)
        second = _run_script(warm.open_session(rate_limit=1), probes)
        assert first == second

    def test_session_counters_and_faults_are_private(self):
        topology = _topology()
        warm = SimulatedNetwork(topology)
        faults = FaultModel(probe_loss=0.2, response_loss=0.2, seed=5)
        session_a = warm.open_session(faults=faults)
        session_b = warm.open_session()
        _run_script(session_a, _probe_script(topology, salt=0))
        assert warm.probes_sent == 0
        assert session_b.probes_sent == 0
        assert session_a.probes_sent > 0
        stats = session_a.stats()
        assert stats["faults"] is not None
        assert session_b.stats()["faults"] is None
        assert warm.stats()["faults"] is None

    def test_session_shares_warm_route_cache(self):
        topology = _topology()
        warm = SimulatedNetwork(topology)
        session_a = warm.open_session()
        assert session_a.route_cache is warm.route_cache
        probes = _probe_script(topology, salt=0)
        _run_script(session_a, probes)
        misses_after_first = warm.route_cache.stats()["misses"]
        assert misses_after_first > 0
        # A second session over the same warm core reuses the tables the
        # first one built: no new misses, only hits.
        _run_script(warm.open_session(), probes)
        assert warm.route_cache.stats()["misses"] == misses_after_first
        assert warm.route_cache.stats()["hits"] > 0

    def test_session_route_cache_opt_out(self):
        topology = _topology()
        warm = SimulatedNetwork(topology)
        session = warm.open_session(use_route_cache=False)
        assert session.route_cache is None
        probes = _probe_script(topology, salt=0)
        assert _run_script(session, probes) \
            == _run_script(warm.open_session(), probes)

    def test_uncached_core_can_open_cached_session(self):
        topology = _topology()
        warm = SimulatedNetwork(topology, use_route_cache=False)
        session = warm.open_session(use_route_cache=True)
        assert session.route_cache is not None
        probes = _probe_script(topology, salt=0)
        assert _run_script(session, probes) == _run_script(warm, probes)

    def test_batched_sends_are_session_private_too(self):
        topology = _topology()
        warm = SimulatedNetwork(topology)
        prefix = next(iter(topology.scanned_prefixes()))
        dst = (prefix << 8) | 1
        batch = [(dst, ttl, 0.001 * ttl, 30000, 0, 8)
                 for ttl in range(1, 9)]
        session_a = warm.open_session()
        session_b = warm.open_session()
        alone = [_transcript_entry(r)
                 for r in warm.open_session().send_probes(list(batch))]
        replies_a = [_transcript_entry(r)
                     for r in session_a.send_probes(list(batch))]
        replies_b = [_transcript_entry(r)
                     for r in session_b.send_probes(list(batch))]
        assert replies_a == alone
        assert replies_b == alone
        assert warm.probes_sent == 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(pytest.main([__file__, "-q"]))
