"""Byte-level header pack/unpack tests."""

import pytest
from hypothesis import given, strategies as st

from repro.net.checksum import verify_checksum
from repro.net.packets import (
    IPV4_HEADER_LEN,
    PROTO_TCP,
    PROTO_UDP,
    IPv4Header,
    PacketError,
    ProbeHeader,
    TCPHeader,
    UDPHeader,
)

addr = st.integers(min_value=0, max_value=2**32 - 1)
port = st.integers(min_value=0, max_value=0xFFFF)


class TestIPv4Header:
    def test_pack_length(self):
        header = IPv4Header(src=1, dst=2, proto=PROTO_UDP, ttl=10)
        assert len(header.pack()) == IPV4_HEADER_LEN

    def test_checksum_verifies(self):
        header = IPv4Header(src=0x01020304, dst=0x05060708,
                            proto=PROTO_UDP, ttl=64, ident=0xBEEF)
        assert verify_checksum(header.pack())

    def test_round_trip(self):
        header = IPv4Header(src=123, dst=456, proto=PROTO_TCP, ttl=7,
                            ident=0x1234, total_length=40)
        parsed = IPv4Header.unpack(header.pack())
        assert parsed.src == 123
        assert parsed.dst == 456
        assert parsed.proto == PROTO_TCP
        assert parsed.ttl == 7
        assert parsed.ident == 0x1234
        assert parsed.total_length == 40

    def test_rejects_bad_ttl(self):
        with pytest.raises(PacketError):
            IPv4Header(src=1, dst=2, proto=17, ttl=256).pack()

    def test_rejects_bad_ipid(self):
        with pytest.raises(PacketError):
            IPv4Header(src=1, dst=2, proto=17, ttl=1, ident=1 << 16).pack()

    def test_unpack_rejects_short_buffer(self):
        with pytest.raises(PacketError):
            IPv4Header.unpack(b"\x45" + b"\x00" * 10)

    def test_unpack_rejects_ipv6(self):
        data = bytearray(IPv4Header(src=1, dst=2, proto=17, ttl=1).pack())
        data[0] = (6 << 4) | 5
        with pytest.raises(PacketError):
            IPv4Header.unpack(bytes(data))

    def test_unpack_rejects_options(self):
        data = bytearray(IPv4Header(src=1, dst=2, proto=17, ttl=1).pack())
        data[0] = (4 << 4) | 6  # IHL 6 words
        with pytest.raises(PacketError):
            IPv4Header.unpack(bytes(data))

    @given(addr, addr, st.integers(min_value=1, max_value=255),
           st.integers(min_value=0, max_value=0xFFFF))
    def test_round_trip_property(self, src, dst, ttl, ident):
        header = IPv4Header(src=src, dst=dst, proto=PROTO_UDP, ttl=ttl,
                            ident=ident)
        parsed = IPv4Header.unpack(header.pack())
        assert (parsed.src, parsed.dst, parsed.ttl, parsed.ident) == \
            (src, dst, ttl, ident)


class TestUDPHeader:
    def test_round_trip(self):
        header = UDPHeader(src_port=33000, dst_port=33434, length=20)
        parsed = UDPHeader.unpack(header.pack())
        assert parsed == header

    def test_rejects_out_of_range_port(self):
        with pytest.raises(PacketError):
            UDPHeader(src_port=70000, dst_port=1).pack()

    def test_unpack_rejects_short(self):
        with pytest.raises(PacketError):
            UDPHeader.unpack(b"\x00" * 4)

    @given(port, port, st.integers(min_value=8, max_value=0xFFFF))
    def test_round_trip_property(self, src, dst, length):
        parsed = UDPHeader.unpack(UDPHeader(src, dst, length).pack())
        assert (parsed.src_port, parsed.dst_port, parsed.length) == \
            (src, dst, length)


class TestTCPHeader:
    def test_round_trip(self):
        header = TCPHeader(src_port=1234, dst_port=80, seq=0xCAFEBABE)
        parsed = TCPHeader.unpack(header.pack())
        assert parsed.src_port == 1234
        assert parsed.dst_port == 80
        assert parsed.seq == 0xCAFEBABE

    def test_default_flags_are_ack(self):
        assert TCPHeader(src_port=1, dst_port=2).flags == 0x10

    def test_rejects_large_seq(self):
        with pytest.raises(PacketError):
            TCPHeader(src_port=1, dst_port=2, seq=2**32).pack()

    def test_unpack_rejects_short(self):
        with pytest.raises(PacketError):
            TCPHeader.unpack(b"\x00" * 10)


class TestProbeHeader:
    def test_udp_round_trip(self):
        probe = ProbeHeader(src=0x0A000001, dst=0x14000001, ttl=16,
                            ipid=0x7ABC, proto=PROTO_UDP, src_port=40000,
                            dst_port=33434, udp_length=20)
        parsed = ProbeHeader.unpack(probe.pack())
        assert parsed.dst == probe.dst
        assert parsed.ttl == probe.ttl
        assert parsed.ipid == probe.ipid
        assert parsed.src_port == probe.src_port
        assert parsed.udp_length == probe.udp_length

    def test_tcp_round_trip(self):
        probe = ProbeHeader(src=1, dst=2, ttl=8, ipid=99, proto=PROTO_TCP,
                            src_port=5555, dst_port=80, tcp_seq=123456)
        parsed = ProbeHeader.unpack(probe.pack())
        assert parsed.tcp_seq == 123456
        assert parsed.proto == PROTO_TCP

    def test_udp_padding_matches_length(self):
        probe = ProbeHeader(src=1, dst=2, ttl=3, ipid=4, udp_length=40)
        packed = probe.pack()
        assert len(packed) == IPV4_HEADER_LEN + 40

    def test_quotation_is_header_plus_8(self):
        probe = ProbeHeader(src=1, dst=2, ttl=3, ipid=4, udp_length=63)
        assert len(probe.quotation()) == IPV4_HEADER_LEN + 8

    def test_quotation_parses_back(self):
        probe = ProbeHeader(src=9, dst=10, ttl=11, ipid=12, src_port=2000,
                            udp_length=30)
        parsed = ProbeHeader.unpack(probe.quotation())
        assert parsed.dst == 10
        assert parsed.src_port == 2000

    def test_rejects_unknown_protocol(self):
        with pytest.raises(PacketError):
            ProbeHeader(src=1, dst=2, ttl=3, ipid=4, proto=47).pack()

    @given(addr, st.integers(min_value=1, max_value=32),
           st.integers(min_value=0, max_value=0xFFFF), port,
           st.integers(min_value=8, max_value=8 + 63))
    def test_udp_property_round_trip(self, dst, ttl, ipid, src_port, length):
        probe = ProbeHeader(src=0, dst=dst, ttl=ttl, ipid=ipid,
                            src_port=src_port, udp_length=length)
        parsed = ProbeHeader.unpack(probe.pack())
        assert (parsed.dst, parsed.ttl, parsed.ipid, parsed.src_port,
                parsed.udp_length) == (dst, ttl, ipid, src_port, length)
