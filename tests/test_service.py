"""The scan daemon: coalescing, epoch cache, cancellation, protocol.

All asyncio tests run through ``asyncio.run`` (no plugin dependency).
The daemon's core (:class:`TraceService`) is exercised directly where
possible; the NDJSON transport tests boot a real loopback server.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro import api
from repro.service.client import (open_connection, send_request,
                                  trace_stream)
from repro.service.daemon import TraceService, start_service
from repro.service.loadtest import build_payloads, percentile, run_loadtest


def _engine(prefixes=64, seed=20201027):
    return api.Engine.from_request(api.ScanRequest(prefixes=prefixes,
                                                   seed=seed))


async def _collect(service, payload):
    """Drain one handle_trace stream into (hops, terminal)."""
    hops, terminal = [], None
    async for record in service.handle_trace(payload):
        if record["type"] == "hop":
            hops.append(record)
        else:
            terminal = record
    return hops, terminal


class TestCoalescing:
    def test_concurrent_same_key_shares_one_probe_stream(self):
        async def run():
            service = TraceService(_engine())
            payload = {"destination": "20.0.0.7", "flow": 1}
            results = await asyncio.gather(
                _collect(service, payload),
                _collect(service, payload),
                _collect(service, payload))
            return service, results

        service, results = asyncio.run(run())
        assert service.traces_started == 1
        assert service.coalesced == 2
        modes = sorted(terminal["cache"] for _, terminal in results)
        assert modes == ["coalesced", "coalesced", "miss"]
        baseline_hops = results[0][0]
        for hops, terminal in results[1:]:
            assert hops == baseline_hops
            assert terminal["trace"] == results[0][1]["trace"]

    def test_mid_stream_join_replays_prefix_then_rides_live(self):
        async def run():
            service = TraceService(_engine())
            payload = {"destination": "20.0.0.7", "flow": 1}
            first_hops = []
            joined = None

            async def early_client():
                nonlocal joined
                async for record in service.handle_trace(payload):
                    if record["type"] != "hop":
                        continue
                    first_hops.append(record)
                    if len(first_hops) == 3 and joined is None:
                        # The flight is mid-stream: join now.
                        joined = asyncio.ensure_future(
                            _collect(service, payload))

            await early_client()
            late_hops, late_terminal = await joined
            return service, first_hops, late_hops, late_terminal

        service, first_hops, late_hops, late_terminal = asyncio.run(run())
        assert service.traces_started == 1, "late joiner must not re-probe"
        assert late_terminal["cache"] == "coalesced"
        # The late joiner saw the identical full hop sequence: the
        # already-streamed prefix replayed, the rest live.
        assert late_hops == first_hops
        assert len(late_hops) > 3

    def test_interleaved_flights_match_solo_results(self):
        # Two different keys in flight at once on the shared warm engine
        # must each produce exactly what they produce when run alone —
        # the session-isolation bugfix surfaced at the service layer.
        payload_a = {"destination": "20.0.0.7", "flow": 1}
        payload_b = {"destination": "20.0.9.9", "flow": 5}

        async def interleaved():
            service = TraceService(_engine())
            return await asyncio.gather(_collect(service, payload_a),
                                        _collect(service, payload_b))

        async def solo(payload):
            return await _collect(TraceService(_engine()), payload)

        (hops_a, term_a), (hops_b, term_b) = asyncio.run(interleaved())
        solo_a = asyncio.run(solo(payload_a))
        solo_b = asyncio.run(solo(payload_b))
        assert hops_a == solo_a[0]
        assert hops_b == solo_b[0]

        def relative(trace):
            # The interleaved flight starts later on the service clock;
            # everything but the absolute timestamps must match (the
            # elapsed virtual time only to float precision — the start
            # offset shifts the addition order).
            start = trace["first"]
            normal = {key: value for key, value in trace.items()
                      if key not in ("first", "last", "ts")}
            normal["elapsed"] = pytest.approx(trace["last"] - start)
            return normal

        assert relative(solo_a[1]["trace"]) == relative(term_a["trace"])
        assert relative(solo_b[1]["trace"]) == relative(term_b["trace"])


class TestCache:
    def test_repeat_within_epoch_hits_without_reprobing(self):
        async def run():
            service = TraceService(_engine())
            payload = {"destination": "20.0.0.7", "flow": 1}
            first = await _collect(service, payload)
            probes_after_first = service.probes_sent
            second = await _collect(service, payload)
            return service, probes_after_first, first, second

        service, probes_after_first, first, second = asyncio.run(run())
        assert second[1]["cache"] == "hit"
        assert second[0] == first[0]
        assert second[1]["trace"] == first[1]["trace"]
        # The probe counter is flat across the cache hit.
        assert service.probes_sent == probes_after_first
        assert service.traces_started == 1

    def test_epoch_flap_invalidates_entry(self):
        async def run():
            service = TraceService(_engine())
            payload = {"destination": "20.0.0.7", "flow": 1}
            await _collect(service, payload)
            service.advance(service.engine.flap_epoch_seconds)
            second = await _collect(service, payload)
            return service, second

        service, second = asyncio.run(run())
        assert second[1]["cache"] == "miss", \
            "a flapped epoch must not serve the stale route"
        assert second[1]["epoch"] == 1
        assert service.evicted_epoch == 1
        assert service.traces_started == 2

    def test_lru_eviction_at_capacity(self):
        async def run():
            service = TraceService(_engine(), cache_size=2)
            for last_octet in (1, 2, 3):
                await _collect(service, {"destination":
                                         f"20.0.0.{last_octet}"})
            # Key 1 was evicted by key 3; key 2 and 3 still hit.
            oldest = await _collect(service, {"destination": "20.0.0.1"})
            newer = await _collect(service, {"destination": "20.0.0.3"})
            return service, oldest, newer

        service, oldest, newer = asyncio.run(run())
        assert service.evicted_lru >= 1
        assert oldest[1]["cache"] == "miss"
        assert newer[1]["cache"] == "hit"

    def test_cache_size_zero_disables_caching(self):
        async def run():
            service = TraceService(_engine(), cache_size=0)
            payload = {"destination": "20.0.0.7"}
            await _collect(service, payload)
            return service, await _collect(service, payload)

        service, second = asyncio.run(run())
        assert second[1]["cache"] == "miss"
        assert service.cache_len == 0


class TestCancellation:
    def test_cancelled_client_leaves_no_leaks_and_flight_completes(self):
        async def run():
            service = TraceService(_engine())
            payload = {"destination": "20.0.0.7", "flow": 1}
            seen = asyncio.Event()

            async def doomed():
                async for record in service.handle_trace(payload):
                    seen.set()  # received at least one record, bail out

            task = asyncio.ensure_future(doomed())
            await seen.wait()
            task.cancel()
            with pytest.raises(asyncio.CancelledError):
                await task
            flight = next(iter(service._flights.values()), None)
            subscribers_after_cancel = (flight.subscriber_count
                                        if flight is not None else 0)
            await service.drain()
            follow_up = await _collect(service, payload)
            return service, subscribers_after_cancel, follow_up

        service, subscribers_after_cancel, follow_up = asyncio.run(run())
        # The dead client's queue was unsubscribed...
        assert subscribers_after_cancel == 0
        # ...and the flight ran to completion anyway: its result is
        # cached and no flight entry leaked.
        assert follow_up[1]["cache"] == "hit"
        assert service.inflight == 0
        assert service.traces_started == 1


class TestRequestValidation:
    @pytest.mark.parametrize("payload,fragment", [
        ({"flow": 1}, "destination"),
        ({"destination": "not-an-ip"}, "IPv4"),
        ({"destination": "20.0.0.1", "bogus": 1}, "unknown"),
        ({"destination": "20.0.0.1", "flow": "x"}, "integer"),
        ({"destination": "99.99.0.1"}, "outside"),
    ])
    def test_malformed_requests_become_error_records(self, payload,
                                                     fragment):
        async def run():
            service = TraceService(_engine())
            return service, await _collect(service, payload)

        service, (hops, terminal) = asyncio.run(run())
        assert hops == []
        assert terminal["type"] == "error"
        assert fragment.lower() in terminal["error"].lower()
        assert service.errors == 1
        assert service.inflight == 0


class TestProtocol:
    """NDJSON over a real loopback socket."""

    def test_full_session_over_tcp(self):
        async def run():
            handle = await start_service(_engine(), port=0)
            host, port = handle.host, handle.port
            out = {}
            out["trace"] = await trace_stream(
                {"destination": "20.0.0.7", "flow": 2, "id": 41},
                host=host, port=port)
            out["repeat"] = await trace_stream(
                {"destination": "20.0.0.7", "flow": 2}, host=host,
                port=port)
            out["bad_json"] = await self._raw_line(host, port,
                                                   b"{nope\n")
            out["non_object"] = await self._raw_line(host, port,
                                                     b"[1, 2]\n")
            reader, writer = await open_connection(host, port)
            out["stats"] = await send_request(reader, writer,
                                              {"control": "stats"})
            out["advance"] = await send_request(
                reader, writer, {"control": "advance", "seconds": 10.0})
            out["bad_advance"] = await send_request(
                reader, writer, {"control": "advance", "seconds": "x"})
            out["unknown"] = await send_request(reader, writer,
                                                {"control": "defrag"})
            writer.close()
            await writer.wait_closed()
            await handle.close()
            return out

        out = asyncio.run(run())
        hops, done = out["trace"]
        assert done["type"] == "done" and done["cache"] == "miss"
        assert done["id"] == 41, "request id must be echoed"
        assert all(hop["id"] == 41 for hop in hops)
        assert out["repeat"][1]["cache"] == "hit"
        assert out["bad_json"]["type"] == "error"
        assert "invalid JSON" in out["bad_json"]["error"]
        assert out["non_object"]["type"] == "error"
        stats = out["stats"][1]
        assert stats["type"] == "stats"
        assert stats["requests"] >= 2 and stats["cache_hits"] >= 1
        # One fresh trace ticked the clock by 1.0; the cache hit did not.
        assert out["advance"][1] == {"type": "ok", "now": 11.0, "epoch": 0}
        assert out["bad_advance"][1]["type"] == "error"
        assert out["unknown"][1]["type"] == "error"
        assert "unknown control" in out["unknown"][1]["error"]

    async def _raw_line(self, host, port, line: bytes) -> dict:
        reader, writer = await open_connection(host, port)
        writer.write(line)
        await writer.drain()
        response = json.loads(await reader.readline())
        writer.close()
        await writer.wait_closed()
        return response

    def test_shutdown_control_op_stops_server(self):
        async def run():
            handle = await start_service(_engine(prefixes=8), port=0)
            reader, writer = await open_connection(handle.host,
                                                   handle.port)
            _, ok = await send_request(reader, writer,
                                       {"control": "shutdown"})
            writer.close()
            await writer.wait_closed()
            await asyncio.wait_for(handle.shutdown.wait(), timeout=5)
            await handle.close()
            return ok

        ok = asyncio.run(run())
        assert ok == {"type": "ok", "shutdown": True}

    def test_unix_socket_transport(self, tmp_path):
        path = str(tmp_path / "svc.sock")

        async def run():
            handle = await start_service(_engine(prefixes=8),
                                         socket_path=path)
            result = await trace_stream({"destination": "20.0.0.3"},
                                        socket_path=path)
            await handle.close()
            return result

        hops, done = asyncio.run(run())
        assert done["type"] == "done"
        assert len(hops) == done["trace"]["hop_count"]


class TestLoadtestHarness:
    def test_percentile_nearest_rank(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 1.0) == 4.0
        assert percentile(values, 0.5) == 3.0  # round(0.5*3)=2
        with pytest.raises(ValueError):
            percentile([], 0.5)

    def test_build_payloads_cycles_keys(self):
        engine = _engine(prefixes=16)
        payloads = build_payloads(engine, clients=10, keys=3, flows=2)
        assert len(payloads) == 10
        keys = {(payload["destination"], payload["flow"])
                for payload in payloads}
        assert len(keys) == 3
        for payload in payloads:
            assert engine.contains(
                api.TraceRequest.parse(
                    {k: payload[k]
                     for k in ("destination", "flow")}).destination)

    def test_small_burst_exercises_all_paths(self):
        report = run_loadtest(prefixes=32, clients=30, keys=6, flows=2)
        assert sum(report["outcomes"].values()) == 30
        assert report["outcomes"]["error"] == 0
        assert report["cache_hit_rate"] > 0
        assert report["latency_ms"]["p99"] >= report["latency_ms"]["p50"]
        assert report["service"]["probes_sent"] > 0
