"""Table 4 methodology: probe-log replay against a reference topology."""

import pytest

from repro.analysis.intrusiveness import (
    TopologyMap,
    analyze_overprobing,
    scaled_rate_limit,
)
from repro.core.results import ScanResult


def _reference():
    result = ScanResult(tool="ref")
    result.add_hop(100, 1, 0xAA)   # prefix 100, ttl 1 -> interface 0xAA
    result.add_hop(100, 2, 0xBB)
    result.add_hop(101, 1, 0xAA)   # shared near hop
    return result


class TestTopologyMap:
    def test_lookup(self):
        topo_map = TopologyMap(_reference())
        assert topo_map.interface_for(100 << 8 | 7, 1) == 0xAA
        assert topo_map.interface_for(100 << 8 | 7, 2) == 0xBB

    def test_unknown_pair_is_none(self):
        topo_map = TopologyMap(_reference())
        assert topo_map.interface_for(100 << 8, 9) is None
        assert topo_map.interface_for(999 << 8, 1) is None

    def test_len(self):
        assert len(TopologyMap(_reference())) == 3


class TestAnalyzeOverprobing:
    def test_under_limit_no_overprobing(self):
        log = [(0.1 * i, 100 << 8, 1) for i in range(5)]
        report = analyze_overprobing("t", log, TopologyMap(_reference()),
                                     rate_limit=10)
        assert report.overprobed_interfaces == 0
        assert report.dropped_probes == 0
        assert report.probes_mapped == 5

    def test_over_limit_counts_drops(self):
        # 8 probes to the same interface within one second, limit 5.
        log = [(0.05 * i, (100 << 8) | i, 1) for i in range(4)]
        log += [(0.3 + 0.05 * i, (101 << 8) | i, 1) for i in range(4)]
        report = analyze_overprobing("t", log, TopologyMap(_reference()),
                                     rate_limit=5)
        assert report.overprobed_interfaces == 1  # 0xAA
        assert report.dropped_probes == 3

    def test_bins_are_per_second(self):
        # Same volume spread over two seconds stays under the limit.
        log = [(0.1 * i, 100 << 8, 1) for i in range(4)]
        log += [(1.1 + 0.1 * i, 100 << 8, 1) for i in range(4)]
        report = analyze_overprobing("t", log, TopologyMap(_reference()),
                                     rate_limit=5)
        assert report.overprobed_interfaces == 0

    def test_unmapped_probes_ignored(self):
        log = [(0.0, 999 << 8, 1)] * 100
        report = analyze_overprobing("t", log, TopologyMap(_reference()),
                                     rate_limit=1)
        assert report.probes_mapped == 0
        assert report.overprobed_interfaces == 0

    def test_rejects_bad_limit(self):
        with pytest.raises(ValueError):
            analyze_overprobing("t", [], TopologyMap(_reference()),
                                rate_limit=0)


class TestScaledRateLimit:
    def test_paper_scale_identity(self):
        assert scaled_rate_limit(500, 2**24) == 500

    def test_floor_of_one(self):
        assert scaled_rate_limit(500, 16) == 1

    def test_proportional(self):
        assert scaled_rate_limit(500, 2**23) == 250
