"""Scan result serialization: JSON round-trip, CSV, traceroute text."""

import io

import pytest

from repro.core.config import FlashRouteConfig
from repro.core.output import (
    format_route,
    format_scan_report,
    hops_csv_text,
    load_json,
    read_json,
    result_from_dict,
    result_to_dict,
    save_json,
    write_json,
)
from repro.core.prober import FlashRoute
from repro.core.results import ScanResult
from repro.simnet.network import SimulatedNetwork


def _sample_result():
    result = ScanResult(tool="sample", num_targets=2)
    result.targets = {100: (100 << 8) | 7, 101: (101 << 8) | 9}
    result.add_hop(100, 1, 0x01020304)
    result.add_hop(100, 2, 0x01020305)
    result.record_destination(100, 3)
    result.probes_sent = 10
    result.responses = 3
    result.duration = 12.5
    result.rounds = 4
    result.ttl_probe_histogram.update({1: 2, 2: 2, 3: 1})
    result.response_kinds.update({"ttl_exceeded": 2, "port_unreachable": 1})
    result.add_rtt(42.0)
    return result


class TestJsonRoundTrip:
    def test_dict_round_trip(self):
        original = _sample_result()
        rebuilt = result_from_dict(result_to_dict(original))
        assert rebuilt.tool == original.tool
        assert rebuilt.routes == original.routes
        assert rebuilt.targets == original.targets
        assert rebuilt.dest_distance == original.dest_distance
        assert rebuilt.ttl_probe_histogram == original.ttl_probe_histogram
        assert rebuilt.response_kinds == original.response_kinds
        assert rebuilt.duration == original.duration
        assert rebuilt.mean_rtt_ms() == original.mean_rtt_ms()

    def test_stream_round_trip(self):
        buffer = io.StringIO()
        write_json(_sample_result(), buffer)
        buffer.seek(0)
        rebuilt = read_json(buffer)
        assert rebuilt.interface_count() == 2

    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "scan.json"
        save_json(_sample_result(), str(path))
        rebuilt = load_json(str(path))
        assert rebuilt.probes_sent == 10

    def test_rejects_unknown_version(self):
        payload = result_to_dict(_sample_result())
        payload["format_version"] = 99
        with pytest.raises(ValueError):
            result_from_dict(payload)

    def test_full_scan_round_trip(self, tiny_topology, tiny_targets):
        scan = FlashRoute(FlashRouteConfig(preprobe="none")).scan(
            SimulatedNetwork(tiny_topology), targets=tiny_targets)
        rebuilt = result_from_dict(result_to_dict(scan))
        assert rebuilt.routes == scan.routes
        assert rebuilt.interface_count() == scan.interface_count()
        assert rebuilt.summary() == scan.summary()


class TestCsv:
    def test_header_and_rows(self):
        text = hops_csv_text(_sample_result())
        lines = text.strip().splitlines()
        assert lines[0] == "prefix,target,ttl,interface,is_destination"
        assert len(lines) == 1 + 3  # 2 hops + 1 destination row

    def test_destination_row_flagged(self):
        text = hops_csv_text(_sample_result())
        destination_rows = [line for line in text.splitlines()
                            if line.endswith(",1")]
        assert len(destination_rows) == 1
        assert "0.0.100.7" in destination_rows[0]

    def test_prefix_formatting(self):
        assert "0.0.100.0/24" in hops_csv_text(_sample_result())


class TestText:
    def test_format_route_marks_destination(self):
        text = format_route(_sample_result(), 100)
        assert "[destination]" in text
        assert "1.2.3.4" in text

    def test_format_route_stars_missing_hops(self):
        result = _sample_result()
        result.record_destination(100, 5)  # does not lower the min
        text = format_route(_sample_result(), 100)
        assert text.count("\n") >= 3

    def test_report_limits_routes(self):
        report = format_scan_report(_sample_result(), max_routes=0)
        assert "traceroute to" not in report
        report = format_scan_report(_sample_result(), max_routes=5)
        assert "traceroute to" in report
