#!/usr/bin/env python
"""Head-to-head: FlashRoute vs Yarrp vs Scamper (the paper's Table 3).

Runs all six configurations of the paper's comparison on one simulated
topology with the same per-/24 targets, prints the table, and summarizes
the headline ratios.

Run:  python examples/compare_tools.py [num_prefixes]
"""

import sys

from repro.analysis import render_table, speedup_summary
from repro.baselines import Scamper, ScamperConfig, Yarrp, YarrpConfig
from repro.core import FlashRoute, FlashRouteConfig, random_targets
from repro.core.results import format_scan_time
from repro.simnet import SimulatedNetwork, Topology, TopologyConfig


def main() -> None:
    num_prefixes = int(sys.argv[1]) if len(sys.argv) > 1 else 2048
    topology = Topology(TopologyConfig(num_prefixes=num_prefixes))
    targets = random_targets(topology, seed=1)
    print(f"Scanning {num_prefixes} /24 prefixes with every tool "
          f"(same targets, fresh network per scan)...\n")

    scans = {}

    def run(label, scanner):
        scans[label] = scanner.scan(SimulatedNetwork(topology),
                                    targets=targets)

    run("FlashRoute-16", FlashRoute(FlashRouteConfig.flashroute_16()))
    run("FlashRoute-32", FlashRoute(FlashRouteConfig.flashroute_32()))
    run("Yarrp-16", Yarrp(YarrpConfig.yarrp_16()))
    run("Yarrp-32", Yarrp(YarrpConfig.yarrp_32()))
    run("Scamper-16", Scamper(ScamperConfig.scamper_16()))
    run("Yarrp-32-UDP (sim)",
        FlashRoute(FlashRouteConfig.yarrp32_udp_simulation()))

    rows = [[label, scan.interface_count(), scan.probes_sent,
             format_scan_time(scan.duration)]
            for label, scan in scans.items()]
    print(render_table(["Tool", "Interfaces", "Probes", "Scan Time"], rows,
                       title="Full scan comparison (paper Table 3)"))

    headline = speedup_summary(scans["FlashRoute-16"], scans["Yarrp-32"])
    print(f"\nFlashRoute-16 vs Yarrp-32: "
          f"{headline['time_ratio']:.1f}x faster, "
          f"{headline['probe_ratio']:.1f}x fewer probes, "
          f"{headline['interface_ratio'] * 100:.1f}% of the interfaces "
          f"(paper: 3.5x, 3.6x, 101%)")
    yarrp16 = scans["Yarrp-16"]
    yarrp32 = scans["Yarrp-32"]
    print(f"Yarrp-16 finds only "
          f"{yarrp16.interface_count() / yarrp32.interface_count() * 100:.0f}% "
          f"of Yarrp-32's interfaces — the fill-mode gap-limit-1 problem "
          f"(paper: 49%).")


if __name__ == "__main__":
    main()
