#!/usr/bin/env python
"""Discovery-optimized FlashRoute: hunting load-balanced alternatives (§5.2).

Runs a FlashRoute-32 main scan plus three extra scans whose probes use
shifted source ports (P+1, P+2, P+3) and random starting TTLs.  Per-flow
load balancers hash the ports onto different diamond branches, so the extra
scans — which share the main scan's stop set and are therefore cheap —
reveal alternative interfaces no single-flow scan can see.

Run:  python examples/discovery_optimized.py [num_prefixes]
"""

import sys

from repro.core import FlashRouteConfig, run_discovery_optimized
from repro.core.prober import FlashRoute
from repro.core.results import format_scan_time
from repro.simnet import SimulatedNetwork, Topology, TopologyConfig


def main() -> None:
    num_prefixes = int(sys.argv[1]) if len(sys.argv) > 1 else 2048
    topology = Topology(TopologyConfig(num_prefixes=num_prefixes))
    diamonds = len(topology.lb_groups)
    alternates = sum(
        len(branch) for group in topology.lb_groups for branch in group[1:])
    print(f"Topology has {diamonds} load-balancer diamonds hiding "
          f"{alternates} alternative interfaces from any single flow.\n")

    result = run_discovery_optimized(SimulatedNetwork(topology),
                                     extra_scans=3)
    for scan in result.all_scans():
        print(f"  {scan.tool:22s} interfaces={scan.interface_count():6,} "
              f"probes={scan.probes_sent:8,} "
              f"time={format_scan_time(scan.duration)}")

    union = len(result.interfaces())
    main_only = result.main.interface_count()
    print(f"\nUnion of all four scans: {union:,} interfaces "
          f"(+{union - main_only} over the main scan alone).")

    # Compare against the exhaustive single-flow baseline.
    sim = FlashRoute(FlashRouteConfig.yarrp32_udp_simulation()).scan(
        SimulatedNetwork(topology), targets=dict(result.main.targets))
    print(f"Exhaustive Yarrp-32-UDP simulation: "
          f"{sim.interface_count():,} interfaces with "
          f"{sim.probes_sent:,} probes.")
    print(f"Discovery-optimized nets {union - sim.interface_count():+,} "
          f"interfaces vs the exhaustive scan while sending "
          f"{sim.probes_sent - result.total_probes():,} fewer probes "
          f"(paper: +35,952).")


if __name__ == "__main__":
    main()
