#!/usr/bin/env python
"""FlashRoute6: the paper's §5.4 IPv6 extension in action.

IPv6 cannot be scanned by enumerating prefixes — allocation is sparse, so
both the target list (seed addresses from hitlists/traces) and the control
state (a hash-based DCB store instead of the 2^24-slot array) must change.
This example builds a sparse simulated v6 Internet, scans its seed list
with FlashRoute6, compares against a Yarrp6-style exhaustive baseline, and
shows why the array design had to go.

Run:  python examples/ipv6_scan.py [num_sites]
"""

import sys

from repro.core import projected_scan_memory
from repro.core.results import format_scan_time
from repro.net.addr6 import int_to_ip6
from repro.v6 import (
    FlashRoute6,
    FlashRoute6Config,
    SimulatedNetwork6,
    SparseDCBStore,
    Topology6,
    TopologyConfig6,
    exhaustive_scan6,
)


def main() -> None:
    num_sites = int(sys.argv[1]) if len(sys.argv) > 1 else 128
    topology = Topology6(TopologyConfig6(num_sites=num_sites))
    targets = topology.seed_targets()
    print(f"Sparse v6 Internet: {num_sites} sites announcing "
          f"{len(targets)} /64 subnets (seed list):")
    for subnet, target in list(sorted(targets.items()))[:3]:
        print(f"  {int_to_ip6(subnet << 64)}/64 -> seed "
              f"{int_to_ip6(target)}")
    print("  ...")

    # Why the array had to go: control-state memory.
    store = SparseDCBStore(targets.values(), split_ttl=16, gap_limit=5)
    print(f"\nControl state: sparse store holds {len(store)} blocks in "
          f"{store.memory_footprint() / 1024:.0f} KiB; an array indexed "
          f"by /64 prefix would need 2^64 slots (the /32 IPv4 array alone "
          f"is already {projected_scan_memory(32) / 2**30:.0f} GiB, §5.4).")

    result = FlashRoute6(FlashRoute6Config()).scan(
        SimulatedNetwork6(topology), targets=targets)
    baseline = exhaustive_scan6(SimulatedNetwork6(topology), targets=targets)

    print(f"\nFlashRoute6:  interfaces={result.interface_count():,} "
          f"probes={result.probes_sent:,} "
          f"time={format_scan_time(result.duration)}")
    print(f"Yarrp6-style: interfaces={baseline.interface_count():,} "
          f"probes={baseline.probes_sent:,} "
          f"time={format_scan_time(baseline.duration)}")
    print(f"\nFlashRoute6 used "
          f"{result.probes_sent / baseline.probes_sent * 100:.0f}% of the "
          f"probes for "
          f"{result.interface_count() / baseline.interface_count() * 100:.0f}% "
          f"of the interfaces — the IPv4 headline carries over.")


if __name__ == "__main__":
    main()
