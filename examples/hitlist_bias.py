#!/usr/bin/env python
"""Reproduce the Census-hitlist bias finding (paper §5.1 and Figure 8).

Runs two exhaustive (TTL 1..32) scans over the same /24 prefixes — one
tracing the synthesized ISI-hitlist representative of each block, one a
uniformly random representative — and prints the full bias analysis: the
interface deficit of the hitlist scan, the per-hop Jaccard divergence near
the destinations, the route-length asymmetry, and the on-path counts that
show hitlist addresses are disproportionately stub-entrance appliances.

Run:  python examples/hitlist_bias.py [num_prefixes]
"""

import sys

from repro.experiments import ExperimentContext, run_fig8
from repro.simnet import Topology, TopologyConfig


def main() -> None:
    num_prefixes = int(sys.argv[1]) if len(sys.argv) > 1 else 2048
    context = ExperimentContext(
        topology=Topology(TopologyConfig(num_prefixes=num_prefixes)))
    print(f"Exhaustively scanning {num_prefixes} prefixes twice "
          f"(hitlist vs random representatives)...\n")

    result = run_fig8(context)
    print(result.render())

    report = result.report
    deficit = report.interface_gap() / max(report.random_interfaces, 1)
    print(f"\nTakeaways:")
    print(f"  * the hitlist scan discovers {deficit * 100:.1f}% fewer "
          f"interfaces (paper: 8.4%)")
    print(f"  * hitlist targets answer probes "
          f"{report.hitlist_responsive / max(report.random_responsive, 1):.1f}x "
          f"more often — they are selected for responsiveness")
    print(f"  * but they sit at the stub periphery: "
          f"{report.hitlist_on_random_routes} of them appear as transit "
          f"hops on routes to random targets, vs only "
          f"{report.random_on_hitlist_routes} the other way")
    print(f"  * use the hitlist for preprobing hints, trace random "
          f"addresses for topology (the paper's §4.1.3 arrangement)")


if __name__ == "__main__":
    main()
