#!/usr/bin/env python
"""Quickstart: scan a simulated Internet with FlashRoute.

Builds a seeded 1024-prefix topology, runs a FlashRoute-16 scan (split
TTL 16, GapLimit 5, hitlist preprobing — the paper's recommended
configuration), and prints the scan summary plus a traceroute-style view of
one discovered route.

Run:  python examples/quickstart.py
"""

from repro import FlashRoute, FlashRouteConfig, SimulatedNetwork, Topology, TopologyConfig
from repro.net import int_to_ip


def main() -> None:
    print("Generating a 1024-prefix simulated Internet...")
    topology = Topology(TopologyConfig(num_prefixes=1024, seed=2020))
    network = SimulatedNetwork(topology)

    print("Running FlashRoute-16 (split TTL 16, gap limit 5, "
          "hitlist preprobing)...")
    scanner = FlashRoute(FlashRouteConfig.flashroute_16())
    result = scanner.scan(network)

    print()
    print(result.summary())
    print(f"  responses: {result.responses:,}  "
          f"rounds: {result.rounds}  "
          f"probes/target: {result.probes_per_target():.1f}  "
          f"mean RTT: {result.mean_rtt_ms():.1f} ms")

    # Show the best-covered route to a responding destination,
    # traceroute style.  (Starred hops were skipped by backward probing's
    # redundancy elimination or simply never answered.)
    prefix = max(result.dest_distance,
                 key=lambda p: len(result.routes.get(p, {})))
    hops = result.routes.get(prefix, {})
    target = result.targets[prefix]
    print(f"\nRoute toward {int_to_ip(target)}:")
    end = result.dest_distance.get(prefix)
    for ttl in range(1, (end or max(hops)) + 1):
        responder = hops.get(ttl)
        if ttl == end:
            print(f"  {ttl:2d}  {int_to_ip(target)}  <- destination "
                  f"(port unreachable)")
        elif responder is not None:
            print(f"  {ttl:2d}  {int_to_ip(responder)}")
        else:
            print(f"  {ttl:2d}  *")


if __name__ == "__main__":
    main()
