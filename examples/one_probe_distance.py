#!/usr/bin/env python
"""The one-probe hop-distance measurement, down to the wire bytes (§3.3.1).

Walks through FlashRoute's probe encoding for a single measurement:

1. encode the probe state into real header fields (IPID bits, UDP length,
   checksum-derived source port);
2. serialize the probe to wire bytes and parse it back;
3. inject it into the simulated network with TTL 32;
4. decode the ICMP port-unreachable response and recover the hop distance
   from the quoted residual TTL — one probe, exact distance.

Then validates the measurement against a classic 32-probe traceroute.

Run:  python examples/one_probe_distance.py
"""

from repro.baselines import ClassicTraceroute
from repro.core import decode_response, encode_probe, rtt_ms
from repro.net import (
    ProbeHeader,
    distance_from_unreachable,
    int_to_ip,
    pack_icmp_error,
    unpack_icmp_error,
)
from repro.simnet import SimulatedNetwork, Topology, TopologyConfig


def find_responsive_target(topology):
    """First destination that answers UDP:33434 (an active host)."""
    for offset, record in enumerate(topology.prefixes):
        stub = topology.stubs[record.stub_id]
        if record.active_hosts and not stub.ttl_reset and not record.flap:
            prefix = topology.base_prefix + offset
            return (prefix << 8) | min(record.active_hosts)
    raise SystemExit("no responsive destination in this topology draw")


def main() -> None:
    topology = Topology(TopologyConfig(num_prefixes=512, seed=11))
    network = SimulatedNetwork(topology)
    dst = find_responsive_target(topology)
    print(f"Target: {int_to_ip(dst)} "
          f"(true distance: {topology.destination_distance(dst)} hops)\n")

    # 1. Encode the probe state into header fields.
    send_time = 1.234
    marking = encode_probe(dst, initial_ttl=32, send_time=send_time)
    print(f"Probe encoding at t={send_time:.3f}s:")
    print(f"  IPID          = {marking.ipid:#06x} "
          f"(5 bits TTL | 1 bit preprobe | 10 bits timestamp)")
    print(f"  UDP length    = {marking.udp_length} "
          f"(8-byte header + 6 low timestamp bits)")
    print(f"  UDP src port  = {marking.src_port} "
          f"(Internet checksum of {int_to_ip(dst)})")

    # 2. Serialize to wire bytes and round-trip.
    probe = ProbeHeader(src=topology.vantage_addr, dst=dst, ttl=32,
                        ipid=marking.ipid, src_port=marking.src_port,
                        udp_length=marking.udp_length)
    wire = probe.pack()
    print(f"  wire bytes    = {wire[:28].hex()}... ({len(wire)} bytes)")
    parsed = ProbeHeader.unpack(wire)
    assert parsed.ipid == marking.ipid and parsed.dst == dst

    # 3. Inject and receive.
    response = network.send_probe(dst, 32, send_time, marking.src_port,
                                  ipid=marking.ipid,
                                  udp_length=marking.udp_length)
    assert response is not None, "target went silent (unlucky draw)"
    icmp_wire = pack_icmp_error(response.kind, response.responder,
                                topology.vantage_addr,
                                response.quoted.quotation())
    print(f"\nICMP response from {int_to_ip(response.responder)} "
          f"({response.kind.value}), {len(icmp_wire)} wire bytes")
    reparsed = unpack_icmp_error(icmp_wire,
                                 arrival_time=response.arrival_time)
    assert reparsed.quoted_residual_ttl == response.quoted_residual_ttl

    # 4. Decode: distance and RTT from the quotation alone.
    decoded = decode_response(response)
    distance = distance_from_unreachable(response, decoded.initial_ttl)
    print(f"  quoted residual TTL = {response.quoted_residual_ttl}")
    print(f"  distance = 32 - {response.quoted_residual_ttl} + 1 "
          f"= {distance} hops")
    print(f"  RTT from probe timestamp = "
          f"{rtt_ms(decoded, response.arrival_time):.0f} ms")

    # Validate against classic traceroute (32 probes instead of 1).
    reference = ClassicTraceroute(SimulatedNetwork(topology)).trace(dst)
    print(f"\nClassic traceroute used {reference.probes} probes; "
          f"triggering TTL = {reference.triggering_ttl}")
    verdict = "match" if reference.triggering_ttl == distance else "MISMATCH"
    print(f"One-probe measurement vs traceroute: {verdict} "
          f"(paper: agree for ~90% of routes)")


if __name__ == "__main__":
    main()
