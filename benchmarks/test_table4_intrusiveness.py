"""Table 4: interface overprobing (scan intrusiveness).

Paper values (probe timelines at 100 Kpps replayed on the Scamper topology,
500 responses/s/interface limit):

    Tool                        Overprobed Interfaces   Dropped Probes
    FlashRoute-16               5,746                   14,569,275
    FlashRoute-32               3,091                    8,312,385
    Yarrp-32                    9,895                   53,813,793
    Yarrp-32 3-hop protection   9,903                   53,792,883
    Yarrp-32 6-hop protection   9,886                   53,364,491

Shape targets: both FlashRoute configurations overprobe fewer interfaces and
drop far fewer probes than Yarrp-32; FlashRoute-32 is the least intrusive;
neighborhood protection does not materially reduce Yarrp's overprobing.
"""

from conftest import run_once
from repro.experiments import run_table4


def test_table4_intrusiveness(benchmark, context, save_result):
    result = run_once(benchmark, run_table4, context)
    save_result("table4_intrusiveness", result.render())

    rows = {row[0]: (row[1], row[2]) for row in result.rows}
    fr16_over, fr16_drop = rows["FlashRoute-16"]
    fr32_over, fr32_drop = rows["FlashRoute-32"]
    yarrp_over, yarrp_drop = rows["Yarrp-32"]

    # Yarrp-32 must actually overprobe at 100 Kpps.
    assert yarrp_over > 0
    assert yarrp_drop > 0

    # Both FlashRoute configurations drop far fewer probes than Yarrp-32.
    assert fr16_drop < yarrp_drop
    assert fr32_drop < 0.7 * yarrp_drop

    # FlashRoute-32 is the least intrusive configuration of the five.
    assert fr32_drop == min(drop for _over, drop in rows.values())

    # Neighborhood protection does not meaningfully help (paper §4.2.2).
    for label in ("Yarrp-32 3-hop protection", "Yarrp-32 6-hop protection"):
        over, drop = rows[label]
        assert over > 0.8 * yarrp_over
