"""Table 1: impact of redundancy elimination during backward probing.

Paper values (full /24 IPv4 space, 100 Kpps):

    Split-TTL  Removal  Interfaces  Probes        Scan time
    32         On       805,472     164,882,469   27:54.19
    32         Off      826,701     338,063,800   56:36.14
    16         On       814,801     101,314,451   17:16.94
    16         Off      817,509     257,983,117   43:33.55

Shape targets: removal cuts probes and time by half or more at both split
TTLs, at the cost of a small (< 5 %) interface loss.
"""

from conftest import run_once
from repro.experiments import run_table1


def test_table1_redundancy(benchmark, context, save_result):
    result = run_once(benchmark, run_table1, context)
    save_result("table1_redundancy", result.render())

    def row(split, removal):
        return next(r for r in result.rows
                    if r[0] == split and r[1] == removal)

    for split in (32, 16):
        on = row(split, "On")
        off = row(split, "Off")
        # Redundancy elimination reduces probes by at least 40 %.
        assert on[3] < 0.6 * off[3]
        # Interface loss from early termination stays small.
        assert on[2] > 0.93 * off[2]
    # Split 16 with removal is the cheapest configuration.
    assert row(16, "On")[3] == min(r[3] for r in result.rows)
