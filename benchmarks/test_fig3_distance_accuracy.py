"""Figure 3: accuracy of the one-probe hop-distance measurement.

Paper values: the measured distance equals the traceroute triggering TTL for
~89.7 % of routes, is within one hop for a further ~7 %, and differs by more
than one hop (middlebox TTL normalization) for ~3.3 %.
"""

from conftest import run_once
from repro.experiments import run_fig3


def test_fig3_distance_accuracy(benchmark, context, save_result):
    result = run_once(benchmark, run_fig3, context)
    save_result("fig3_distance_accuracy", result.render())

    distribution = result.distribution
    assert distribution.samples > 50, "too few responsive targets to judge"

    # ~90 % exact, ~97 % within one hop, small but nonzero far tail.
    assert distribution.fraction_exact() > 0.80
    assert distribution.fraction_within(1) > 0.92
    assert distribution.fraction_within(1) < 1.0, \
        "middlebox TTL normalization should leave a >1-hop tail"
