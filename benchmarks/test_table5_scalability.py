"""Table 5: non-throttled scan speed.

Paper values (C++ tools on a 2012 server):

    Tool            Scan Speed (Kpps)   Estimated Scan Time
    FlashRoute-32   302.8 / 228.9       11:23.4
    FlashRoute-16   302.8 / 215.6        6:55.38
    Yarrp-32        239.1               24:47.74
    Yarrp-16        189.7               15:37.51

Our "hardware" is this Python implementation, so absolute rates are three
orders of magnitude lower; the reproduction targets are (a) the estimation
method (probes / achievable rate) and (b) FlashRoute-16's estimated
full-scan time remaining the shortest despite per-probe bookkeeping.

This file also carries the raw pytest-benchmark timings of the two send
loops, which is what ``--benchmark-only`` reports.
"""

from conftest import run_once
from repro.baselines.yarrp import Yarrp, YarrpConfig
from repro.core.config import FlashRouteConfig
from repro.core.prober import FlashRoute
from repro.experiments import run_table5
from repro.simnet.network import SimulatedNetwork


def test_table5_throughput(benchmark, context, save_result):
    result = run_once(benchmark, run_table5, context)
    save_result("table5_scalability", result.render())

    rates = {row.tool: row.rate_pps for row in result.rows}
    estimates = {row.tool: row.probes / row.rate_pps for row in result.rows}

    # All engines sustain a sane Python-level rate.
    for tool, rate in rates.items():
        assert rate > 1_000, f"{tool} unreasonably slow: {rate:.0f} pps"

    # FlashRoute's probe savings dominate any per-probe state-keeping
    # cost: both configurations finish their estimated scans before either
    # Yarrp (paper §4.2.3; the FlashRoute-16-vs-32 ordering is within
    # Python timing noise at this scale).
    assert estimates["FlashRoute-16"] < estimates["Yarrp-32"]
    assert estimates["FlashRoute-16"] < estimates["Yarrp-16"]
    assert estimates["FlashRoute-32"] < estimates["Yarrp-32"]
    assert estimates["Yarrp-32"] == max(estimates.values())


def test_flashroute_send_loop(benchmark, context):
    """Raw engine throughput, measured properly by pytest-benchmark."""
    def scan():
        return FlashRoute(FlashRouteConfig.flashroute_16()).scan(
            context.network(), targets=context.random_targets)

    result = benchmark.pedantic(scan, rounds=3, iterations=1)
    assert result.probes_sent > 0


def test_yarrp_send_loop(benchmark, context):
    def scan():
        return Yarrp(YarrpConfig.yarrp_32()).scan(
            context.network(), targets=context.random_targets)

    result = benchmark.pedantic(scan, rounds=3, iterations=1)
    assert result.probes_sent == 32 * len(context.random_targets)
