"""Scan-daemon resilience under overload and hostile clients.

PR 10's service-hardening acceptance numbers: run the load-test
harness three ways against a daemon with admission control
(``max_inflight`` slots + a bounded wait queue) —

* **clean**: a full burst sized to exactly the admission capacity
  (slots + queue), so nothing is shed;
* **overload**: a 2x burst with the same admission config, where the
  overflow must come back as structured ``overloaded`` sheds (zero
  dropped connections, zero daemon crashes);
* **chaos**: the overload burst plus seeded hostile clients
  (slow-loris writers, mid-stream disconnects, connection resets,
  malformed floods) riding alongside.

and regenerate ``BENCH_service_resilience.json`` at the repo root with
the p99 and error/shed breakdown of the *admitted* requests in every
mode.

The comparison is the invariant load shedding exists to provide:
because the queue is bounded, an admitted request waits behind at most
``max_queued`` others no matter how large the offered load — so the
admitted population's tail at 2x offered load must match the tail at
1x.  Acceptance: the daemon survives every mode (the post-burst ping
answers), overload sheds are structured (``client_exceptions == 0``),
and the admitted-request p99 under overload stays within
``ADMITTED_P99_LIMIT`` x the clean p99.  Wall-clock p99s on a shared
container are noisy, so the ratio compares the best of ``_RUNS``
alternating runs per mode (the same min-of-N estimator
BENCH_service_latency uses).
"""

from __future__ import annotations

import json
import os
import pathlib

from conftest import run_once

from repro.service.loadtest import run_loadtest
from repro.testing.chaos import ChaosSpec

REPORT_NAME = "BENCH_service_resilience.json"

_PREFIXES = 256
_KEYS = 32
_FLOWS = 4
_MAX_INFLIGHT = 8
#: Admission capacity = slots + queue; the clean burst fills it exactly.
_CLEAN_CLIENTS = int(os.environ.get("REPRO_BENCH_RESILIENCE_CLIENTS",
                                    "48"))
_MAX_QUEUED = _CLEAN_CLIENTS - _MAX_INFLIGHT
_OVERLOAD_CLIENTS = _CLEAN_CLIENTS * 2
_RUNS = int(os.environ.get("REPRO_BENCH_OVERHEAD_RUNS", "3"))

#: Shedding exists to protect admitted requests: under a 2x overload
#: burst their p99 may cost at most this factor over the clean burst.
ADMITTED_P99_LIMIT = 2.0

_CHAOS = ChaosSpec(seed=20201027, slow_loris=6, disconnects=6,
                   resets=6, malformed=6)


def _clean():
    # Full burst at exactly the admission capacity: every request is
    # admitted (slots + queue hold the whole burst), nothing is shed —
    # the baseline tail already includes the bounded queue wait.
    return run_loadtest(prefixes=_PREFIXES, clients=_CLEAN_CLIENTS,
                        keys=_KEYS, flows=_FLOWS,
                        max_inflight=_MAX_INFLIGHT,
                        max_queued=_MAX_QUEUED)


def _overload(chaos=None):
    return run_loadtest(prefixes=_PREFIXES, clients=_OVERLOAD_CLIENTS,
                        keys=_KEYS, flows=_FLOWS,
                        max_inflight=_MAX_INFLIGHT,
                        max_queued=_MAX_QUEUED, chaos=chaos)


def _admitted_p99(report):
    return report["latency_ms_admitted"]["p99"]


def run_resilience_benchmark():
    clean = _clean()
    overload = _overload()
    chaos = _overload(chaos=_CHAOS)
    clean_p99s = [_admitted_p99(clean)]
    overload_p99s = [_admitted_p99(overload)]
    # Alternate modes so machine drift hits both estimates equally.
    for _ in range(_RUNS - 1):
        clean_p99s.append(_admitted_p99(_clean()))
        overload_p99s.append(_admitted_p99(_overload()))
    clean_p99, overload_p99 = min(clean_p99s), min(overload_p99s)
    return {
        "benchmark": "service_resilience",
        "admission": {"max_inflight": _MAX_INFLIGHT,
                      "max_queued": _MAX_QUEUED},
        "clean": clean,
        "overload": overload,
        "chaos": chaos,
        "admitted_p99": {
            "clean_ms": clean_p99,
            "overload_ms": overload_p99,
            "clean_runs_ms": clean_p99s,
            "overload_runs_ms": overload_p99s,
            "ratio": round(overload_p99 / clean_p99, 3),
            "criterion": f"min-of-{_RUNS} overload admitted p99 <= "
                         f"{ADMITTED_P99_LIMIT} * clean admitted p99",
        },
    }


def test_service_resilience_report(benchmark, save_result):
    report = run_once(benchmark, run_resilience_benchmark)

    path = (pathlib.Path(__file__).resolve().parent.parent / REPORT_NAME)
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    save_result("service_resilience",
                json.dumps({"admitted_p99": report["admitted_p99"],
                            "overload_outcomes":
                                report["overload"]["outcomes"]},
                           sort_keys=True))

    clean, overload, chaos = (report["clean"], report["overload"],
                              report["chaos"])

    # The daemon survives every mode; nothing ever crashes a
    # connection instead of answering it.
    for mode in (clean, overload, chaos):
        assert mode["daemon_survived"], mode["outcomes"]
        assert mode["client_exceptions"] == 0, mode["outcomes"]
        assert mode["outcomes"]["error"] == 0, mode["outcomes"]

    # The clean burst fits the admission capacity: nothing shed.
    assert clean["outcomes"]["shed"] == 0, clean["outcomes"]

    # Overload sheds the overflow with structured records, and every
    # request is accounted for: admitted + shed == clients.
    assert overload["outcomes"]["shed"] > 0, overload["outcomes"]
    assert overload["admitted"] + overload["outcomes"]["shed"] \
        == overload["clients"], overload["outcomes"]
    assert overload["service"]["shed"] == overload["outcomes"]["shed"]

    # The chaos mode also served its measured burst (hostile clients
    # ride alongside, they don't displace it).
    assert chaos["chaos"]["daemon"]["client_failures"] == 0, \
        chaos["chaos"]
    assert chaos["admitted"] > 0, chaos["outcomes"]

    # Shedding protects the admitted population's tail.
    ratio = report["admitted_p99"]["ratio"]
    assert ratio <= ADMITTED_P99_LIMIT, report["admitted_p99"]
