"""Benchmark scaffolding.

Each benchmark regenerates one of the paper's tables/figures on the shared
benchmark topology (size controlled by ``REPRO_BENCH_PREFIXES``, default
4096), times it via pytest-benchmark, prints the paper-style rendering, and
saves it under ``results/`` so EXPERIMENTS.md can be checked against fresh
output.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.experiments import ExperimentContext

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def context() -> ExperimentContext:
    return ExperimentContext.for_bench()


@pytest.fixture(scope="session")
def save_result():
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(name: str, text: str) -> None:
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n",
                                                 encoding="utf-8")
        print(f"\n{text}")

    return _save


def run_once(benchmark, func, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1,
                              iterations=1)
