"""Figure 6: discovered interfaces and scan time vs GapLimit.

Paper shape: scan time grows roughly linearly with the gap limit while the
number of discovered interfaces flattens once the gap limit reaches ~5 —
which is why 5 is the default (re-validating Scamper's default).
"""

from conftest import run_once
from repro.experiments import run_fig6

GAPS = (0, 1, 2, 3, 4, 5, 6, 7, 8)


def test_fig6_gap_limit(benchmark, context, save_result):
    result = run_once(benchmark, run_fig6, context, gap_limits=GAPS)
    save_result("fig6_gap_limit", result.render())

    interfaces = result.interfaces_series()
    times = result.time_series()

    # Interfaces grow monotonically (allowing tiny jitter) with gap limit...
    for low, high in zip(GAPS, GAPS[1:]):
        assert interfaces[high] >= interfaces[low] * 0.995

    # ...with the big jumps early and a flat tail after 5:
    early_gain = interfaces[5] - interfaces[0]
    late_gain = interfaces[8] - interfaces[5]
    assert early_gain > 5 * max(late_gain, 1)

    # Scan time keeps growing past the knee (the cost of large gaps).
    assert times[8] > times[5] > times[2] > times[0]

    # Gap 0 (no forward probing) loses a substantial share of interfaces.
    assert interfaces[0] < 0.9 * interfaces[5]
