"""Resilience overhead: retries-disabled scans vs. the seed hot path.

The resilience layer's contract is that its *disabled* configuration is
free: ``ResilienceConfig(retries=0)`` must neither change the ScanResult
nor slow the scan measurably.  This benchmark runs the same FlashRoute
scan three ways — no resilience, an inert config, and a retry budget of
2 under 5% injected loss — on the shared benchmark topology
(``REPRO_BENCH_PREFIXES``, default 4096), takes the min of repeated
``time.process_time`` measurements, and regenerates
``BENCH_retry_overhead.json`` at the repo root.

Acceptance: the inert pass must cost less than 1.05x the seed pass and
produce the identical ScanResult.  The retry pass is reported for
context (its extra cost is the retransmitted probes, not bookkeeping).
"""

from __future__ import annotations

import gc
import json
import pathlib
import time

from conftest import run_once

from repro.core import FlashRoute, FlashRouteConfig
from repro.core.output import result_to_dict
from repro.core.resilience import ResilienceConfig
from repro.experiments.common import bench_topology
from repro.simnet import FaultModel, SimulatedNetwork

REPORT_NAME = "BENCH_retry_overhead.json"
_REPEATS = 3
_LOSS = 0.05
_FAULT_SEED = 0x10552020


def _time_scan(topology, resilience=None, faults=None):
    network = SimulatedNetwork(topology, faults=faults)
    config = FlashRouteConfig(seed=1, resilience=resilience)
    gc.collect()
    gc.disable()
    try:
        start = time.process_time()
        result = FlashRoute(config).scan(network)
        elapsed = time.process_time() - start
    finally:
        gc.enable()
    return elapsed, result


def run_retry_overhead_benchmark():
    topology = bench_topology()
    lossy = FaultModel.symmetric_loss(_LOSS, seed=_FAULT_SEED)
    passes = [
        ("resilience_off", None, None),
        ("retries_disabled", ResilienceConfig(retries=0), None),
        ("retries_2_loss_5pct", ResilienceConfig(retries=2), lossy),
    ]
    best = {}
    results = {}
    for _ in range(_REPEATS):
        # Interleave so every pass samples the same machine-speed windows.
        for label, resilience, faults in passes:
            elapsed, result = _time_scan(topology, resilience, faults)
            if label not in best or elapsed < best[label]:
                best[label] = elapsed
            results[label] = result_to_dict(result)

    baseline = best["resilience_off"]
    report = {
        "benchmark": "retry_overhead",
        "topology": {"num_prefixes": topology.num_prefixes,
                     "seed": topology.config.seed},
        "passes": {label: {"seconds": round(best[label], 4)}
                   for label, _, _ in passes},
        "overhead": {
            "disabled_vs_off": round(
                best["retries_disabled"] / baseline, 3),
            "retrying_vs_off": round(
                best["retries_2_loss_5pct"] / baseline, 3),
        },
        "retry_pass": {
            "loss": _LOSS,
            "retries": 2,
            "probes": results["retries_2_loss_5pct"]["probes_sent"],
            "baseline_probes": results["resilience_off"]["probes_sent"],
        },
    }
    return report, results


def test_retry_overhead_report(benchmark, save_result):
    report, results = run_once(benchmark, run_retry_overhead_benchmark)

    # An inert config changes nothing: identical ScanResult.
    assert results["retries_disabled"] == results["resilience_off"]

    path = (pathlib.Path(__file__).resolve().parent.parent / REPORT_NAME)
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    save_result("retry_overhead",
                json.dumps(report["overhead"], sort_keys=True))

    # Acceptance: retries-disabled bookkeeping under 5% of the hot path.
    assert report["overhead"]["disabled_vs_off"] < 1.05, report["overhead"]
