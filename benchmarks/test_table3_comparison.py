"""Table 3: FlashRoute vs Yarrp vs Scamper on a full scan.

Paper values (full /24 IPv4 space):

    Tool                        Interfaces  Probes        Scan Time
    FlashRoute-16               812,403      97,807,092   17:16.56
    FlashRoute-32               807,588     159,185,459   27:31.85
    Yarrp-16                    393,433     177,851,221   30:14.71
    Yarrp-32                    801,455     355,702,000   1:00:15.21
    Scamper-16                  819,149     131,833,846   3:43:27.56
    Yarrp-32-UDP (Simulation)   829,387     355,701,952   59:58.40

Shape targets: FlashRoute-16 is fastest with the fewest probes (>= 2.5x
faster than Yarrp-32 at equal rate); Yarrp-16 discovers far fewer
interfaces; Scamper spends more probes for ~1 % more interfaces and is by
far the slowest; convergence termination costs FlashRoute only a few
percent of the UDP simulation's interfaces.
"""

from conftest import run_once
from repro.experiments import run_table3


def test_table3_comparison(benchmark, context, save_result):
    result = run_once(benchmark, run_table3, context)
    save_result("table3_comparison", result.render())

    scans = result.scans
    fr16 = scans["FlashRoute-16"]
    fr32 = scans["FlashRoute-32"]
    yarrp16 = scans["Yarrp-16"]
    yarrp32 = scans["Yarrp-32"]
    scamper = scans["Scamper-16"]
    udp_sim = scans["Yarrp-32-UDP (Simulation)"]

    # FlashRoute-16 wins on probes and time by a large factor.
    assert fr16.probes_sent < 0.45 * yarrp32.probes_sent
    assert fr16.duration < 0.45 * yarrp32.duration
    assert fr16.probes_sent == min(s.probes_sent for s in scans.values())

    # FlashRoute-32 sits between FlashRoute-16 and Yarrp-32.
    assert fr16.probes_sent < fr32.probes_sent < yarrp32.probes_sent

    # Yarrp-16's fill mode loses a large share of interfaces.
    assert yarrp16.interface_count() < 0.85 * yarrp32.interface_count()

    # Scamper: more probes than FlashRoute-16, essentially the same
    # interface count (paper: +0.8 %; our preprobing-guided tails give
    # FlashRoute a similar sliver in the other direction), and the slowest
    # scan by an order of magnitude.
    assert scamper.probes_sent > 1.1 * fr16.probes_sent
    assert scamper.interface_count() >= 0.97 * fr16.interface_count()
    assert scamper.duration == max(s.duration for s in scans.values())
    assert scamper.duration > 5 * fr16.duration

    # The exhaustive UDP simulation finds the most interfaces; FlashRoute's
    # convergence termination costs only a few percent.
    assert udp_sim.interface_count() == max(s.interface_count()
                                            for s in scans.values())
    assert fr16.interface_count() > 0.94 * udp_sim.interface_count()

    # UDP beats TCP probing for discovery (§4.2.1 / [16]).
    assert yarrp32.interface_count() < udp_sim.interface_count()
