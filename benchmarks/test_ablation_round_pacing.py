"""Ablation (DESIGN.md §5): the >= 1 s round pacing.

The paper's sender stalls so each round lasts at least one second, giving
responses time to adjust the probing strategy before a destination is
revisited.  Removing the pacing must cost probes: feedback (convergence
stops, forward-horizon updates, destination-reached signals) arrives too
late to save the next round's probes.
"""

from conftest import run_once
from repro.experiments import run_round_pacing_ablation

PACINGS = (0.0, 0.5, 1.0, 2.0)


def test_ablation_round_pacing(benchmark, context, save_result):
    result = run_once(benchmark, run_round_pacing_ablation, context,
                      round_seconds=PACINGS)
    save_result("ablation_round_pacing", result.render())

    probes = {row[0]: row[1] for row in result.rows}

    # No pacing wastes probes relative to the paper's 1 s rounds... unless
    # the probing rate is so low that rounds exceed 1 s anyway; at the
    # benchmark's scaled rate the effect must be visible at 0.0 vs 2.0.
    assert probes[0.0] >= probes[2.0]

    # Pacing beyond the response latency stops helping.
    assert abs(probes[1.0] - probes[2.0]) <= 0.05 * probes[1.0]
