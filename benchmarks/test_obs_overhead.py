"""Flight-recorder overhead: events-off vs. events-on FlashRoute scans.

PR 3's contract keeps the telemetry-off hot path byte-identical to the
pre-telemetry code; this benchmark pins the *enabled* cost of the PR 4
event stream.  It runs the same FlashRoute scan three ways — no
telemetry, JSONL events, binary events — on the shared benchmark
topology (``REPRO_BENCH_PREFIXES``, default 4096), takes the min of
repeated ``time.process_time`` measurements, and regenerates
``BENCH_obs_overhead.json`` at the repo root.

Acceptance: recording every probe/response/stop event must cost less
than 2x the events-off scan.  All passes must produce the identical
ScanResult — the recorder observes, it never perturbs.
"""

from __future__ import annotations

import gc
import json
import pathlib
import time

from conftest import run_once

from repro.core import FlashRoute, FlashRouteConfig
from repro.core.output import result_to_dict
from repro.experiments.common import bench_topology
from repro.obs import EventRecorder, Telemetry
from repro.simnet import SimulatedNetwork

REPORT_NAME = "BENCH_obs_overhead.json"
_REPEATS = 3


def _time_scan(topology, events_path=None):
    telemetry = None
    if events_path is not None:
        telemetry = Telemetry(events=EventRecorder(path=str(events_path)))
    network = SimulatedNetwork(topology)
    config = FlashRouteConfig(seed=1)
    gc.collect()
    gc.disable()
    try:
        start = time.process_time()
        result = FlashRoute(config, telemetry=telemetry).scan(network)
        elapsed = time.process_time() - start
    finally:
        gc.enable()
    events_recorded = 0
    if telemetry is not None:
        events_recorded = telemetry.events.events_recorded
        telemetry.close()
    return elapsed, result, events_recorded


def run_overhead_benchmark(tmp_path):
    topology = bench_topology()
    passes = [
        ("events_off", None),
        ("events_jsonl", tmp_path / "bench_events.jsonl"),
        ("events_binary", tmp_path / "bench_events.bin"),
    ]
    best = {}
    results = {}
    recorded = {}
    for _ in range(_REPEATS):
        # Interleave so every pass samples the same machine-speed windows.
        for label, path in passes:
            elapsed, result, count = _time_scan(topology, path)
            if label not in best or elapsed < best[label]:
                best[label] = elapsed
            results[label] = result_to_dict(result)
            recorded[label] = count

    baseline = best["events_off"]
    report = {
        "benchmark": "obs_overhead",
        "topology": {"num_prefixes": topology.num_prefixes,
                     "seed": topology.config.seed},
        "events_recorded": recorded["events_jsonl"],
        "passes": {label: {"seconds": round(best[label], 4)}
                   for label, _ in passes},
        "overhead": {
            "jsonl_vs_off": round(best["events_jsonl"] / baseline, 3),
            "binary_vs_off": round(best["events_binary"] / baseline, 3),
        },
    }
    return report, results


def test_obs_overhead_report(benchmark, save_result, tmp_path):
    report, results = run_once(benchmark, run_overhead_benchmark, tmp_path)

    # The recorder observes without perturbing: identical ScanResults.
    assert results["events_jsonl"] == results["events_off"]
    assert results["events_binary"] == results["events_off"]
    assert report["events_recorded"] > 0

    path = (pathlib.Path(__file__).resolve().parent.parent / REPORT_NAME)
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    save_result("obs_overhead",
                json.dumps(report["overhead"], sort_keys=True))

    # Acceptance: events-on under 2x events-off, both encodings.
    assert report["overhead"]["jsonl_vs_off"] < 2.0, report["overhead"]
    assert report["overhead"]["binary_vs_off"] < 2.0, report["overhead"]
