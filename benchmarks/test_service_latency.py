"""Scan-daemon latency under a concurrent client burst.

PR 7's service acceptance numbers: boot a real ``flashroute-sim serve``
daemon on a loopback TCP socket, fire ``REPRO_BENCH_CLIENTS`` (default
1000) concurrent clients cycling over 64 distinct ``(destination,
flow)`` keys, and regenerate ``BENCH_service_latency.json`` at the repo
root with wall-clock latency percentiles plus the service's own
counters.

The key set is smaller than the client count and half of it is warmed
before the measured burst, so the run exercises all three serving
paths — fresh traces, mid-flight coalescing, and cache hits — and the
report pins nonzero cache-hit and coalesce rates.

Acceptance: zero client-visible errors, every request served (hits +
misses + coalesced == clients), nonzero cache-hit and coalesce rates,
and a sane latency distribution (p50 <= p90 <= p99 <= max).

PR 8 adds the observability-overhead row: the same burst runs once
telemetry-off (the main report — the zero-overhead default) and once
telemetry-on (request tracing contexts, per-outcome histograms, wall
twins), and the report's ``telemetry_overhead`` section pins full-burst
p99(on) <= 1.15 x p99(off).
"""

from __future__ import annotations

import json
import os
import pathlib

from conftest import run_once

from repro.service.loadtest import run_loadtest

REPORT_NAME = "BENCH_service_latency.json"

_CLIENTS = int(os.environ.get("REPRO_BENCH_CLIENTS", "1000"))
_KEYS = 64
_FLOWS = 4
_PREFIXES = 256


#: Telemetry must stay cheap enough to leave on in production: the
#: instrumented burst's p99 may cost at most this factor over the
#: uninstrumented one.
TELEMETRY_OVERHEAD_LIMIT = 1.15

#: Full-burst wall latency on a shared container is noisy (a single
#: run's p99 swings tens of percent with no code change), so the
#: overhead ratio compares the best p99 of this many runs per mode —
#: the standard noise-resistant estimator for "how fast can it go".
_OVERHEAD_RUNS = int(os.environ.get("REPRO_BENCH_OVERHEAD_RUNS", "3"))


def run_service_benchmark():
    report = run_loadtest(prefixes=_PREFIXES, clients=_CLIENTS,
                          keys=_KEYS, flows=_FLOWS)
    report["benchmark"] = "service_latency"
    off_p99s = [report["latency_ms"]["p99"]]
    on_p99s = []
    instrumented = None
    # Alternate modes so drift on the shared machine hits both equally.
    for _ in range(_OVERHEAD_RUNS):
        instrumented = run_loadtest(prefixes=_PREFIXES,
                                    clients=_CLIENTS, keys=_KEYS,
                                    flows=_FLOWS, telemetry=True)
        on_p99s.append(instrumented["latency_ms"]["p99"])
        if len(off_p99s) < _OVERHEAD_RUNS:
            off_p99s.append(run_loadtest(
                prefixes=_PREFIXES, clients=_CLIENTS, keys=_KEYS,
                flows=_FLOWS)["latency_ms"]["p99"])
    off_p99, on_p99 = min(off_p99s), min(on_p99s)
    report["telemetry_overhead"] = {
        "off_p99_ms": off_p99,
        "on_p99_ms": on_p99,
        "off_p99_runs_ms": off_p99s,
        "on_p99_runs_ms": on_p99s,
        "ratio": round(on_p99 / off_p99, 3),
        "criterion": f"min-of-{_OVERHEAD_RUNS} on_p99 <= "
                     f"{TELEMETRY_OVERHEAD_LIMIT} * off_p99",
        "telemetry_on_latency_ms": instrumented["latency_ms"],
    }
    return report


def test_service_latency_report(benchmark, save_result):
    report = run_once(benchmark, run_service_benchmark)

    path = (pathlib.Path(__file__).resolve().parent.parent / REPORT_NAME)
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    save_result("service_latency",
                json.dumps({"clients": report["clients"],
                            "latency_ms": report["latency_ms"],
                            "cache_hit_rate": report["cache_hit_rate"],
                            "coalesce_rate": report["coalesce_rate"]},
                           sort_keys=True))

    outcomes = report["outcomes"]
    assert outcomes["error"] == 0, outcomes
    served = outcomes["hit"] + outcomes["miss"] + outcomes["coalesced"]
    assert served == report["clients"], outcomes

    # The mix must exercise every serving path.
    assert report["cache_hit_rate"] > 0, report
    assert report["coalesce_rate"] > 0, report
    assert outcomes["miss"] > 0, outcomes

    # Cached keys are served without re-probing: the daemon traces each
    # distinct key at most once, however many clients ask.
    assert report["service"]["traces_started"] <= _KEYS, report["service"]

    latency = report["latency_ms"]
    assert 0 < latency["p50"] <= latency["p90"] <= latency["p99"], latency
    assert latency["p99"] <= latency["max"], latency

    # Per-outcome breakdown: every serving class reports its own tail,
    # and the classes partition the burst.
    breakdown = report["latency_ms_by_outcome"]
    assert set(breakdown) == {"fresh", "hit", "coalesced"}, breakdown
    assert sum(row["count"] for row in breakdown.values()) \
        == report["clients"], breakdown

    # Observability must be cheap enough to leave on.
    overhead = report["telemetry_overhead"]
    assert overhead["ratio"] <= TELEMETRY_OVERHEAD_LIMIT, overhead
