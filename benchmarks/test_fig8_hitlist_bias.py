"""Figure 8 and §5.1: the ISI Census hitlist bias.

Paper findings on exhaustive (TTL 1..32) scans of hitlist vs random
representatives of the same /24s:

* the random scan discovers more interfaces (829,338 vs 759,961);
* interface sets agree far from destinations but diverge within the last
  two hops before them (Jaccard drops);
* routes to random targets are longer more often than the reverse
  (1,515,626 vs 1,349,814), and the extra tail interfaces roughly explain
  the interface gap;
* hitlist targets appear on random-target routes ~4x more often than the
  reverse (27,203 vs 6,421);
* the asymmetry survives restricting to prefixes where both targets
  responded (64,279 vs 34,057);
* ~1.7 % of routes to unresponsive random targets contain loops.
"""

from conftest import run_once
from repro.experiments import run_fig8


def test_fig8_hitlist_bias(benchmark, context, save_result):
    result = run_once(benchmark, run_fig8, context)
    save_result("fig8_hitlist_bias", result.render())

    report = result.report
    jaccard = result.jaccard_by_hop

    # The random scan discovers more interfaces.
    assert report.random_interfaces > report.hitlist_interfaces

    # Jaccard: high agreement far from destinations, sharp divergence at
    # the hop immediately before the destination (our divergence
    # concentrates at the final hop; the paper's smears over the last two).
    far = [jaccard[back] for back in (4, 5, 6, 7, 8)]
    assert jaccard[1] < min(far) * 0.8

    # Route-length asymmetry favours random targets.
    assert report.random_longer > report.hitlist_longer

    # The longer random routes carry extra unique interfaces that explain
    # most of the interface gap.
    gap = report.interface_gap()
    assert report.random_extra_tail_interfaces > 0.5 * gap

    # Hitlist addresses sit on random-target routes far more often than the
    # reverse (they are periphery appliances).
    assert report.hitlist_on_random_routes > 2 * report.random_on_hitlist_routes

    # Hitlist targets respond much more often.
    assert report.hitlist_responsive > 1.5 * report.random_responsive

    # The bias survives the both-responsive restriction.
    assert report.both_random_longer > report.both_hitlist_longer

    # Loops exist but are rare.
    assert 0.0 < report.loop_fraction() < 0.10
