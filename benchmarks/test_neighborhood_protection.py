"""§4.2.1 side experiment: Yarrp's neighborhood protection.

Paper: 3-hop protection cuts probe volume by ~6.3 % and 6-hop by ~15.7 %,
but misses 20 % / 35.6 % of the interfaces inside the protected
neighborhoods.
"""

from conftest import run_once
from repro.experiments import run_neighborhood_protection


def test_neighborhood_protection(benchmark, context, save_result):
    result = run_once(benchmark, run_neighborhood_protection, context)
    save_result("neighborhood_protection", result.render())

    rows = {row[0]: row for row in result.rows}
    plain = rows["Yarrp-32"]
    three = rows["Yarrp-32 3-hop protection"]
    six = rows["Yarrp-32 6-hop protection"]

    # Protection reduces probes, more with a larger radius.
    assert three[2] < plain[2]
    assert six[2] < three[2]
    assert six[4] > three[4] > 0  # skipped probes

    # The saving costs interfaces *inside the protected neighborhood*
    # (total interface counts can wobble by timing-induced route dynamics,
    # so the neighborhood is measured directly from the routes).
    def near_interfaces(label, radius):
        scan = result.scans[label]
        found = set()
        for hops in scan.routes.values():
            for ttl, responder in hops.items():
                if ttl <= radius:
                    found.add(responder)
        return found

    assert len(near_interfaces("Yarrp-32 3-hop protection", 3)) < \
        len(near_interfaces("Yarrp-32", 3))
    assert len(near_interfaces("Yarrp-32 6-hop protection", 6)) < \
        len(near_interfaces("Yarrp-32", 6))
