"""§5.3: in-flight destination address modification.

Paper: the checksum-derived source port exposes middlebox rewrites; the
observed mismatch rate varies by scan between 0.007 % and 0.054 % of
responses.
"""

from conftest import run_once
from repro.experiments import run_rewrite_detection


def test_rewrite_detection(benchmark, context, save_result):
    result = run_once(benchmark, run_rewrite_detection, context,
                      seeds=(1, 2, 3))
    save_result("rewrite_detection", result.render())

    rates = [rate for _tool, _responses, _mismatches, rate in result.rows]

    # Rewrites are detected in at least one scan...
    assert any(rate > 0 for rate in rates)
    # ...at a tiny rate, the same order as the paper's 0.007-0.054 %.
    assert all(rate < 0.005 for rate in rates)
