"""Figure 4: accuracy of proximity-span hop-distance prediction.

Paper values (span 5): 59.1 % of predictions equal the traceroute-measured
distance and a further 25.4 % are within one hop (84.5 % cumulative);
~89.5 % of measured blocks have another measured block within the span.
"""

from conftest import run_once
from repro.experiments import run_fig3, run_fig4


def test_fig4_prediction_accuracy(benchmark, context, save_result):
    fig3 = run_fig3(context)
    result = run_once(benchmark, run_fig4, context, fig3=fig3)
    save_result("fig4_prediction_accuracy", result.render())

    distribution = result.distribution
    assert distribution.samples > 50

    # Predictions are right roughly 6 times in 10 and within one hop more
    # than 8 times in 10 — good enough to be a useful hint, far from exact.
    assert 0.40 < distribution.fraction_exact() < 0.85
    assert distribution.fraction_within(1) > 0.75
    # Prediction is distinctly less accurate than direct measurement.
    assert distribution.fraction_exact() < fig3.distribution.fraction_exact()
    # Most measured blocks can donate to a neighbour.
    assert result.neighbourhood_coverage > 0.6
