"""§5.4's IPv6 extension, prototyped and measured.

The paper defers IPv6 to future work, noting that the control state must
be redesigned for sparse allocation.  This benchmark runs the prototype —
a hash-based DCB store over a seed-list-driven sparse topology — against a
Yarrp6-style exhaustive baseline and checks that FlashRoute's headline
carries over: a small fraction of the probes for (nearly) the same
interface discovery.
"""

from conftest import run_once
from repro.analysis.report import render_table
from repro.core.results import format_scan_time
from repro.v6 import (
    FlashRoute6,
    FlashRoute6Config,
    SimulatedNetwork6,
    Topology6,
    TopologyConfig6,
    exhaustive_scan6,
)


def _run_v6_comparison():
    topology = Topology6(TopologyConfig6(num_sites=256))
    targets = topology.seed_targets()
    flashroute = FlashRoute6(FlashRoute6Config()).scan(
        SimulatedNetwork6(topology), targets=targets)
    exhaustive = exhaustive_scan6(SimulatedNetwork6(topology),
                                  targets=targets)
    return topology, flashroute, exhaustive


def test_ipv6_extension(benchmark, save_result):
    topology, flashroute, exhaustive = run_once(benchmark,
                                                _run_v6_comparison)

    table = render_table(
        ["Tool", "Interfaces", "Probes", "Scan Time"],
        [[scan.tool, scan.interface_count(), scan.probes_sent,
          format_scan_time(scan.duration)]
         for scan in (flashroute, exhaustive)],
        title=f"[§5.4] IPv6 extension "
              f"({len(topology.subnets)} announced /64s, sparse store)")
    save_result("ipv6_extension", table)

    # The redesigned control state scans a target list the flat array
    # never could, and the probing strategy's savings carry over.
    assert flashroute.probes_sent < 0.5 * exhaustive.probes_sent
    assert flashroute.interface_count() >= \
        0.97 * exhaustive.interface_count()
    assert flashroute.duration < exhaustive.duration
    # One probe per (target, hop) in the baseline — sanity of comparison.
    assert exhaustive.probes_sent == 32 * len(topology.subnets)
