"""The paper's §5.4 open question, answered in simulation.

"Which approach is more productive for finding those additional internal
paths (i.e., extending the initial targets to one per /28 or
discovery-optimized mode with varying target addresses) is an interesting
question for future work."

Both approaches are implemented; this benchmark runs them against the same
topology and records the trade-off: finer granularity discovers the most
interior interfaces but pays exponentially in probes and control-state
memory; destination-varying discovery mode recovers a large share of them
at a fraction of both costs.
"""

from conftest import run_once
from repro.experiments import run_granularity_future_work


def test_future_work_granularity(benchmark, context, save_result):
    result = run_once(benchmark, run_granularity_future_work, context,
                      fine_granularity=26, extra_scans=3)
    save_result("future_work_granularity", result.render())

    rows = {row[0]: row for row in result.rows}
    baseline = rows["baseline one-per-/24"]
    fine = rows["one-per-/26"]
    varied = rows["discovery + varying dst (3 extras)"]

    # Both proposals beat the baseline on interfaces found.
    assert fine[1] > baseline[1]
    assert varied[1] > baseline[1]

    # Fine granularity is the most complete...
    assert fine[1] >= varied[1]
    # ...but destination variation is more probe-efficient (interfaces per
    # thousand probes) and needs no extra control-state memory.
    assert varied[3] > fine[3]
    assert varied[4] == baseline[4]
    assert fine[4] != baseline[4]
