"""§4.2.2's trade-off: FlashRoute-32's routes have fewer holes.

Paper: "while both configurations find the same total number of
*interfaces*, the *routes* discovered by FlashRoute-32 will have fewer
holes" — FlashRoute-16 overprobes more and loses more responses; an
experimenter wanting the most complete per-destination routes should pick
FlashRoute-32 with preprobing.
"""

from conftest import run_once
from repro.experiments import run_route_holes


def test_route_holes(benchmark, context, save_result):
    result = run_once(benchmark, run_route_holes, context)
    save_result("route_holes", result.render())

    fr16_holes = result.holes("FlashRoute-16")
    fr32_holes = result.holes("FlashRoute-32")

    # FlashRoute-32's routes are more complete.
    assert fr32_holes < fr16_holes

    # While the interface totals stay within a few percent of each other.
    interfaces = {tool: count for tool, _h, count, _p in result.rows}
    low, high = min(interfaces.values()), max(interfaces.values())
    assert low > 0.96 * high
