"""Raw probe throughput: the route-cache fast path vs. the uncached path.

Unlike the table/figure benchmarks this one measures the simulator itself:
it replays a FlashRoute-shaped probe stream through ``SimulatedNetwork``
three ways (uncached scalar, cached scalar, cached batched) and regenerates
``BENCH_probe_throughput.json`` at the repo root — the same artifact
``tools/bench_report.py`` produces standalone.  Stream size follows
``REPRO_BENCH_PREFIXES`` (default 4096; CI smoke runs use 256).

The hard >=2x acceptance number is measured on the default 4096-prefix
topology (see the committed report); here the assertion is deliberately
lenient so smoke sizes and noisy CI neighbours don't flake — but the cache
must always be a clear win, and all passes must agree on every response.
"""

from __future__ import annotations

import json
import pathlib
import sys

from conftest import run_once

sys.path.insert(
    0, str(pathlib.Path(__file__).resolve().parent.parent / "tools"))

import bench_report  # noqa: E402  (repo tools/, path-injected above)


def test_probe_throughput_report(benchmark, save_result):
    report = run_once(benchmark, bench_report.run_benchmark)
    path = bench_report.write_report(report)
    assert path.name == bench_report.REPORT_NAME
    save_result("probe_throughput",
                json.dumps(report["speedup"], sort_keys=True))

    # run_benchmark() already asserts all passes answered the stream with
    # identical response counts; here we pin the headline properties.
    assert report["responses"] > 0
    assert report["route_cache"]["udp_tables"] > 0
    assert max(report["speedup"].values()) > 1.15, report["speedup"]
