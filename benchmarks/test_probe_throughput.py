"""Raw probe throughput: the route-cache fast path vs. the uncached path.

Unlike the table/figure benchmarks this one measures the simulator itself:
it replays a FlashRoute-shaped probe stream through ``SimulatedNetwork``
three ways (uncached scalar, cached scalar, cached batched), runs the
sharded-scan scaling curve (1/2/4/8 workers through ``repro.core.sharding``,
aggregate pps and parallel efficiency per point), and regenerates
``BENCH_probe_throughput.json`` at the repo root — the same artifact
``tools/bench_report.py`` produces standalone.  Stream size follows
``REPRO_BENCH_PREFIXES`` (default 4096; CI smoke runs use 256).

The hard >=2x acceptance number is measured on the default 4096-prefix
topology (see the committed report); here the assertion is deliberately
lenient so smoke sizes and noisy CI neighbours don't flake — but the cache
must always be a clear win, and all passes must agree on every response.
"""

from __future__ import annotations

import json
import pathlib
import sys

from conftest import run_once

sys.path.insert(
    0, str(pathlib.Path(__file__).resolve().parent.parent / "tools"))

import bench_report  # noqa: E402  (repo tools/, path-injected above)


def test_probe_throughput_report(benchmark, save_result):
    def _full_report():
        report = bench_report.run_benchmark()
        report["scaling"] = bench_report.run_scaling_benchmark()
        report["heartbeat_overhead"] = bench_report.run_heartbeat_benchmark()
        return report

    report = run_once(benchmark, _full_report)
    path = bench_report.write_report(report)
    assert path.name == bench_report.REPORT_NAME
    save_result("probe_throughput",
                json.dumps(report["speedup"], sort_keys=True) + "\n"
                + bench_report.render_scaling(report["scaling"]))

    # run_benchmark() already asserts all passes answered the stream with
    # identical response counts; here we pin the headline properties.
    assert report["responses"] > 0
    assert report["route_cache"]["udp_tables"] > 0
    assert max(report["speedup"].values()) > 1.15, report["speedup"]

    # The sharded scaling curve: every worker point ran the identical
    # merged scan (same probe count), and aggregate throughput must
    # clearly exceed the single-worker baseline at 4 workers.  The hard
    # >=1.6x acceptance number is pinned on the committed 4096-prefix
    # report; the in-test floor is lenient for CI smoke sizes, where
    # per-slice CPU shrinks toward scheduler noise.
    scaling = report["scaling"]
    assert set(scaling["workers"]) == {"1", "2", "4", "8"}
    for point in scaling["workers"].values():
        assert point["aggregate_pps"] > 0
        assert 0 < point["efficiency"] <= point["speedup"] or \
            point["speedup"] == 1.0
    assert scaling["speedup_4v1"] > 1.2, scaling["workers"]

    # Heartbeat streaming (scan --shards --progress) must stay cheap on
    # the worker side: aggregate CPU-time throughput with heartbeats on
    # within 15% of heartbeats off (the ISSUE 9 acceptance bar).
    heartbeat = report["heartbeat_overhead"]
    assert heartbeat["heartbeat_on_pps"] > 0
    assert heartbeat["overhead"] <= 1.15, heartbeat
