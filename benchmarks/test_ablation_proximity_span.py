"""Ablation (paper §5.4 future work): the proximity-span parameter.

The default span of 5 is 'rather arbitrary'; this sweep quantifies the
coverage/accuracy/probe-cost trade-off the authors propose to study.
"""

from conftest import run_once
from repro.experiments import run_proximity_span_ablation

SPANS = (0, 1, 2, 3, 5, 8, 13)


def test_ablation_proximity_span(benchmark, context, save_result):
    result = run_once(benchmark, run_proximity_span_ablation, context,
                      spans=SPANS)
    save_result("ablation_proximity_span", result.render())

    coverage = {row[0]: float(row[1].rstrip("%")) for row in result.rows}

    # Coverage grows monotonically with the span.
    for low, high in zip(SPANS, SPANS[1:]):
        assert coverage[high] >= coverage[low]

    # Span 5 captures most of what span 13 does: diminishing returns.
    assert coverage[5] > 0.6 * coverage[13]

    # Span 0 means measured-only coverage.
    assert coverage[0] < coverage[5]
