"""Ablation (paper §5.4): discovery-optimized starting-TTL policy.

The paper proposes replacing the uniform random starting TTL of extra scans
with one guided by the measured route length ('alternative routes may not
drastically change the route length — saving seven backward probes').
"""

from conftest import run_once
from repro.experiments import run_discovery_start_ablation


def test_ablation_discovery_start(benchmark, context, save_result):
    result = run_once(benchmark, run_discovery_start_ablation, context,
                      extra_scans=3)
    save_result("ablation_discovery_start", result.render())

    rows = {row[0]: row for row in result.rows}
    uniform = rows["uniform [1,32]"]
    guided = rows["length-guided"]

    # The guided policy must not waste more extra-scan probes than uniform.
    assert guided[2] <= uniform[2] * 1.05

    # Both policies discover a comparable union of interfaces.
    assert guided[1] > 0.95 * uniform[1]
