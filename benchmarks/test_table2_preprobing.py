"""Table 2: effect of preprobing on FlashRoute performance.

Paper values:

    Configuration           Interfaces  Probes        Scan Time
    32/hitlist preprobing   807,588     159,185,459   27:31.85
    32/random preprobing    805,472     164,882,469   27:54.19
    32/no preprobing        799,562     181,757,638   30:48.48
    16/hitlist preprobing   812,403      97,807,092   17:16.56
    16/random preprobing    814,801     101,314,451   17:16.94
    16/no preprobing        802,524      96,687,844   16:39.06

Shape targets: at split 32 preprobing saves ~10 % of probes (hitlist a bit
more than random); at split 16 the unfoldable preprobes make the scan no
cheaper; split 16 beats split 32 across the board.
"""

from conftest import run_once
from repro.experiments import run_table2


def test_table2_preprobing(benchmark, context, save_result):
    result = run_once(benchmark, run_table2, context)
    save_result("table2_preprobing", result.render())

    probes = {row[0]: row[2] for row in result.rows}
    interfaces = {row[0]: row[1] for row in result.rows}

    # Split 32: preprobing saves probes.
    assert probes["32/hitlist preprobing"] < probes["32/no preprobing"]
    assert probes["32/random preprobing"] < probes["32/no preprobing"]

    # Split 16: preprobing cannot fold into the first round, so it does not
    # save probes (paper: the overhead outweighs the improvement).
    assert probes["16/no preprobing"] <= probes["16/random preprobing"]

    # Split 16 dominates split 32 on probes for every preprobing mode.
    for mode in ("hitlist preprobing", "random preprobing", "no preprobing"):
        assert probes[f"16/{mode}"] < probes[f"32/{mode}"]

    # Interface counts stay within a few percent of each other.
    low, high = min(interfaces.values()), max(interfaces.values())
    assert low > 0.95 * high
