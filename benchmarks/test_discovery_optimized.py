"""§5.2: discovery-optimized FlashRoute.

Paper: a FlashRoute-32 scan plus three source-port-varied extra scans takes
56 minutes at 100 Kpps and discovers 865,339 interfaces — 35,952 more than
the simulated Yarrp-32-UDP finds in the same time.
"""

from conftest import run_once
from repro.experiments import run_discovery_experiment


def test_discovery_optimized(benchmark, context, save_result):
    result = run_once(benchmark, run_discovery_experiment, context,
                      extra_scans=3)
    save_result("discovery_optimized", result.render())

    discovery = result.discovery
    union = len(discovery.interfaces())

    # The extra scans add interfaces beyond the main scan.
    assert union > discovery.main.interface_count()

    # And the union beats the exhaustive single-flow Yarrp-UDP simulation:
    # the port variation reaches load-balancer branches one flow cannot.
    assert union > result.yarrp_udp_sim.interface_count()

    # The whole mode still costs fewer probes than two exhaustive scans.
    assert discovery.total_probes() < 2 * result.yarrp_udp_sim.probes_sent

    # Each extra scan is much cheaper than the main scan.
    for extra in discovery.extras:
        assert extra.probes_sent < discovery.main.probes_sent
