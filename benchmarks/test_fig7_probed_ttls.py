"""Figure 7: distribution of targets with routes probed at a given TTL.

Paper shape: FlashRoute-16 progressively terminates backward probing below
TTL 16; Scamper starts removing redundancy one hop later, stays flat from
TTL 14 down to 6 (its redundancy window), then plunges to FlashRoute's
level — the reason it spends 34.7 % more probes.
"""

from conftest import run_once
from repro.experiments import run_fig7


def test_fig7_probed_ttls(benchmark, context, save_result):
    result = run_once(benchmark, run_fig7, context)
    save_result("fig7_probed_ttls", result.render())

    flashroute = result.flashroute
    scamper = result.scamper
    total = len(context.random_targets)

    # Scamper probes every target at its first TTL; both tools cover the
    # split region heavily.
    assert scamper[16] == total

    # FlashRoute's curve declines monotonically toward low TTLs.
    for ttl in range(6, 15):
        assert flashroute[ttl] <= flashroute[ttl + 1] * 1.02

    # Scamper's no-stop window is flat from 13 down to 7...
    window = [scamper[ttl] for ttl in range(7, 14)]
    assert max(window) - min(window) <= 0.05 * max(window)

    # ...and sits well above FlashRoute throughout the backward region.
    for ttl in range(7, 14):
        assert scamper[ttl] > flashroute[ttl]

    # Below the window Scamper's curve plunges toward FlashRoute's.
    assert scamper[4] < 0.8 * scamper[10]
