#!/usr/bin/env python
"""Diff two scans and attribute every divergence to a cause.

Thin script wrapper over :mod:`repro.obs.scandiff`, for use without
installing the package (CI artifacts, clean-vs-faulted comparisons).
Inputs are ``scan --events`` logs (JSONL or binary) or ``scan --output``
result JSON files; pass the second run's fault parameters to attribute
fault-induced holes to their exact hash draws.

Usage: python tools/scan_diff.py A B [--loss P] [--blackout P]
                                     [--fault-seed N] [--json]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

if __package__ in (None, ""):  # allow "python tools/scan_diff.py"
    sys.path.insert(
        0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.obs.scandiff import (  # noqa: E402
    diff_views,
    divergences_to_json,
    load_view,
    render_scan_diff,
)
from repro.simnet.faults import FaultModel  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Join two scans per prefix and classify divergences")
    parser.add_argument("a", metavar="A",
                        help="first input (event log or result JSON)")
    parser.add_argument("b", metavar="B",
                        help="second input (the faulted run, if any)")
    parser.add_argument("--loss", type=float, default=0.0,
                        help="run B's --loss probability")
    parser.add_argument("--blackout", type=float, default=0.0,
                        help="run B's --blackout fraction")
    parser.add_argument("--fault-seed", type=int, default=0,
                        help="run B's --fault-seed")
    parser.add_argument("--json", action="store_true",
                        help="print divergences as JSON")
    args = parser.parse_args(argv)
    fault_model = None
    if args.loss or args.blackout:
        fault_model = FaultModel(probe_loss=args.loss,
                                 response_loss=args.loss,
                                 blackout_fraction=args.blackout,
                                 seed=args.fault_seed)
    try:
        view_a = load_view(args.a)
        view_b = load_view(args.b)
        divergences = diff_views(view_a, view_b, fault_model)
    except (OSError, ValueError, KeyError, json.JSONDecodeError) as exc:
        print(f"scan-diff: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(divergences_to_json(divergences), indent=2,
                         sort_keys=True))
    else:
        print(render_scan_diff(view_a, view_b, divergences))
    return 0


if __name__ == "__main__":
    sys.exit(main())
