#!/usr/bin/env python
"""Raw probe-throughput benchmark: cached vs. uncached simulator fast path.

Replays a FlashRoute-shaped probe stream — per destination, one TTL-32
preprobe, the backward walk 16..1, and a short forward walk — straight into
``SimulatedNetwork``, measuring CPU-time probes-per-second three ways:

* ``uncached``:   scalar ``send_probe`` with ``use_route_cache=False``
                  (the pre-cache baseline);
* ``cached``:     scalar ``send_probe`` on the route-cache fast path;
* ``batched``:    ``send_probes`` in ring-walk-sized bursts on the fast
                  path (what the engines actually do).

All three paths answer the stream identically (asserted via response
counts); only the time differs.  Timing uses ``time.process_time`` (CPU
seconds) with the repetitions of all passes *interleaved* and best-of
reported — on a shared/throttled box, wall-clock and even sequential CPU
measurements drift with load and frequency scaling, while interleaved
minima sample every pass in the same speed windows.  The report lands in
``BENCH_probe_throughput.json`` at the repo root — the perf trajectory's
headline number.

Usage: python tools/bench_report.py [num_prefixes] [seed]
       (defaults: REPRO_BENCH_PREFIXES or 4096, REPRO_BENCH_SEED)
"""

from __future__ import annotations

import gc
import io
import json
import os
import pathlib
import sys
import time
from typing import Dict, List, Tuple

if __package__ in (None, ""):  # allow "python tools/bench_report.py"
    sys.path.insert(
        0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.experiments.common import bench_prefix_count, bench_seed, \
    bench_topology
from repro.net.checksum import flow_source_port
from repro.simnet.network import SimulatedNetwork
from repro.simnet.topology import Topology

REPORT_NAME = "BENCH_probe_throughput.json"

#: Virtual pacing of the replayed stream (the paper's probing rate).
_VIRTUAL_PPS = 100_000.0
#: Probes per ``send_probes`` burst in the batched pass (a ring-walk step
#: sends 1-2 probes; preprobing and Yarrp chunk larger, so use a middle
#: ground that exercises the per-burst amortization).
_BATCH = 16
#: Interleaved timing repetitions; best-of is reported to shave scheduler
#: and CPU-frequency noise.
_REPEATS = 9

#: Worker counts of the sharded-scan scaling curve.
_SCALING_WORKERS = (1, 2, 4, 8)
#: Tool the scaling curve runs (a full engine scan, not a replayed
#: stream — worker startup and merge costs are part of the measurement).
_SCALING_TOOL = "flashroute-16"
#: Best-of repetitions per scaling point.
_SCALING_REPEATS = 3

#: Worker count and virtual heartbeat interval of the heartbeat-overhead
#: benchmark (scan --shards N --progress).
_HEARTBEAT_SHARDS = 4
_HEARTBEAT_INTERVAL = 0.5
#: Best-of repetitions per heartbeat mode.
_HEARTBEAT_REPEATS = 3


def flashroute_stream(topology: Topology
                      ) -> List[Tuple[int, int, float, int, int, int]]:
    """A FlashRoute-16-shaped probe stream over every scanned /24.

    Per destination: preprobe at TTL 32, backward 16..1, forward 17..21 —
    ~22 probes with the per-destination locality a real ring walk has,
    paced at the virtual 100 Kpps.  Tuples are preserialized so the timed
    loops measure the network, not the generator.
    """
    gap = 1.0 / _VIRTUAL_PPS
    now = 0.0
    probes = []
    for prefix in topology.scanned_prefixes():
        dst = (prefix << 8) | 0x1D
        src_port = flow_source_port(dst, 0)
        for ttl in [32, *range(16, 0, -1), *range(17, 22)]:
            probes.append((dst, ttl, now, src_port, 0, 8))
            now += gap
    return probes


def _time_scalar(network: SimulatedNetwork, probes) -> Tuple[float, int]:
    send = network.send_probe
    responses = 0
    start = time.process_time()
    for dst, ttl, send_time, src_port, ipid, udp_length in probes:
        if send(dst, ttl, send_time, src_port, ipid=ipid,
                udp_length=udp_length) is not None:
            responses += 1
    return time.process_time() - start, responses


def _time_batched(network: SimulatedNetwork, probes) -> Tuple[float, int]:
    send_many = network.send_probes
    responses = 0
    start = time.process_time()
    for begin in range(0, len(probes), _BATCH):
        for response in send_many(probes[begin:begin + _BATCH]):
            if response is not None:
                responses += 1
    return time.process_time() - start, responses


def run_benchmark(num_prefixes: int = None, seed: int = None) -> Dict:
    topology = bench_topology(num_prefixes, seed)
    probes = flashroute_stream(topology)

    passes = [
        ("uncached", False, _time_scalar),
        ("cached", True, _time_scalar),
        ("batched", True, _time_batched),
    ]
    best: Dict[str, float] = {}
    response_counts = set()
    cache_stats = None
    for _ in range(_REPEATS):
        # Interleave the passes within each repetition so every pass
        # samples the same machine-speed windows (see module docstring).
        for label, use_cache, timer in passes:
            network = SimulatedNetwork(topology, use_route_cache=use_cache)
            # Keep cyclic-GC pauses out of the timed window (the passes
            # allocate ~100K response objects each; a gen-2 collection
            # landing mid-pass skews a single measurement by several ms).
            gc.collect()
            gc.disable()
            try:
                elapsed, responses = timer(network, probes)
            finally:
                gc.enable()
            if label not in best or elapsed < best[label]:
                best[label] = elapsed
            response_counts.add(responses)
            if use_cache:
                cache_stats = network.route_cache.stats()
    measured = {label: {"seconds": round(best[label], 4),
                        "pps": round(len(probes) / best[label])}
                for label, _, _ in passes}
    if len(response_counts) != 1:
        raise AssertionError(
            f"paths disagreed on response counts: {response_counts}")

    uncached_pps = measured["uncached"]["pps"]
    report = {
        "benchmark": "probe_throughput",
        "topology": {"num_prefixes": topology.num_prefixes,
                     "seed": topology.config.seed},
        "probes": len(probes),
        "responses": response_counts.pop(),
        "passes": measured,
        "speedup": {
            "cached_vs_uncached": round(
                measured["cached"]["pps"] / uncached_pps, 2),
            "batched_vs_uncached": round(
                measured["batched"]["pps"] / uncached_pps, 2),
        },
        "route_cache": cache_stats,
    }
    return report


def _aggregate_pps(slice_stats) -> float:
    """Sum of per-worker CPU-time probing rates from ``slice_stats``."""
    per_worker: Dict[int, Dict[str, float]] = {}
    for entry in slice_stats:
        bucket = per_worker.setdefault(
            entry["pid"], {"probes": 0, "cpu": 0.0})
        bucket["probes"] += entry["probes"]
        bucket["cpu"] += entry["cpu_seconds"]
    return sum(bucket["probes"] / bucket["cpu"]
               for bucket in per_worker.values()
               if bucket["cpu"] > 0)


def run_scaling_benchmark(num_prefixes: int = None, seed: int = None,
                          workers: Tuple[int, ...] = _SCALING_WORKERS
                          ) -> Dict:
    """Sharded full-engine scans at 1/2/4/8 workers (the ``scan --shards``
    path, see repro.core.sharding).

    Two throughputs are reported per point:

    * ``aggregate_pps`` — the sum of each worker's CPU-time probing rate
      (its probes over the CPU seconds its slices took inside that
      process).  This is the machine-independent software-scaling
      measure: it shows the keyspace partitions without per-worker
      overhead regardless of how many cores the benchmark box can
      actually grant the workers.
    * ``wall_pps`` — merged probes over wall-clock seconds, which tracks
      ``aggregate_pps`` only when enough idle cores exist.

    ``speedup`` and parallel ``efficiency`` derive from the aggregate;
    best-of ``_SCALING_REPEATS`` per point, same noise rationale as the
    stream benchmark.
    """
    from repro.core.sharding import ShardPlan, run_sharded_scan

    topology = bench_topology(num_prefixes, seed)
    points: Dict[str, Dict] = {}
    base_aggregate = None
    probes = None
    for count in workers:
        plan = ShardPlan(tool=_SCALING_TOOL, topology=topology.config,
                         shards=count, slices=max(16, count))
        best_wall = None
        best_aggregate = None
        for _ in range(_SCALING_REPEATS):
            gc.collect()
            begin = time.perf_counter()
            outcome = run_sharded_scan(plan, topology=topology)
            wall = time.perf_counter() - begin
            aggregate = _aggregate_pps(outcome.slice_stats)
            probes = outcome.result.probes_sent
            if best_wall is None or wall < best_wall:
                best_wall = wall
            if best_aggregate is None or aggregate > best_aggregate:
                best_aggregate = aggregate
        if base_aggregate is None:
            base_aggregate = best_aggregate
        speedup = best_aggregate / base_aggregate
        points[str(count)] = {
            "wall_seconds": round(best_wall, 3),
            "wall_pps": round(probes / best_wall),
            "aggregate_pps": round(best_aggregate),
            "speedup": round(speedup, 2),
            "efficiency": round(speedup / count, 2),
        }
    report = {
        "tool": _SCALING_TOOL,
        "topology": {"num_prefixes": topology.num_prefixes,
                     "seed": topology.config.seed},
        "probes_per_scan": probes,
        "workers": points,
        "note": ("aggregate_pps sums per-worker CPU-time probing rates "
                 "(software scaling, core-count independent); wall_pps "
                 "tracks it only with enough idle cores"),
    }
    four = points.get("4")
    if four is not None:
        report["speedup_4v1"] = four["speedup"]
    return report


def run_heartbeat_benchmark(num_prefixes: int = None,
                            seed: int = None) -> Dict:
    """Worker heartbeat streaming overhead on the sharded path.

    Runs the same ``--shards 4`` scan with heartbeats off (the telemetry
    default) and on (``--progress``-style: each worker streams throttled
    heartbeat records to the parent over a multiprocessing queue, and
    the parent aggregates them into a progress view).  The measure is
    ``aggregate_pps`` — per-worker CPU-time probing rates — so only the
    worker-side cost of building and enqueueing heartbeats counts, and
    the acceptance bar is ``overhead <= 1.15`` (heartbeat-on throughput
    within 15% of heartbeat-off).  Interleaved best-of, as everywhere.
    """
    from repro.core.sharding import ShardPlan, run_sharded_scan
    from repro.obs.shardobs import ShardProgressView

    topology = bench_topology(num_prefixes, seed)
    modes = {"heartbeat_off": None, "heartbeat_on": _HEARTBEAT_INTERVAL}
    best: Dict[str, float] = {}
    probes = None
    for _ in range(_HEARTBEAT_REPEATS):
        for label, interval in modes.items():
            plan = ShardPlan(tool=_SCALING_TOOL, topology=topology.config,
                             shards=_HEARTBEAT_SHARDS,
                             heartbeat_interval=interval)
            progress = None
            if interval is not None:
                progress = ShardProgressView(
                    slices=plan.slices, workers=plan.shards,
                    interval=3600.0, stream=io.StringIO())
            gc.collect()
            outcome = run_sharded_scan(plan, topology=topology,
                                       progress=progress)
            probes = outcome.result.probes_sent
            aggregate = _aggregate_pps(outcome.slice_stats)
            if label not in best or aggregate > best[label]:
                best[label] = aggregate
    overhead = best["heartbeat_off"] / best["heartbeat_on"]
    return {
        "shards": _HEARTBEAT_SHARDS,
        "heartbeat_interval_virtual_s": _HEARTBEAT_INTERVAL,
        "probes_per_scan": probes,
        "heartbeat_off_pps": round(best["heartbeat_off"]),
        "heartbeat_on_pps": round(best["heartbeat_on"]),
        "overhead": round(overhead, 3),
        "criterion": "overhead <= 1.15",
    }


def render_scaling(scaling: Dict) -> str:
    """The scaling section as the paper-style text table."""
    lines = [f"sharded scaling — {scaling['tool']} @ "
             f"{scaling['topology']['num_prefixes']} prefixes "
             f"({scaling['probes_per_scan']:,} probes/scan)",
             "workers  aggregate_pps  speedup  efficiency  wall_s"]
    for count in sorted(scaling["workers"], key=int):
        point = scaling["workers"][count]
        lines.append(f"{count:>7}  {point['aggregate_pps']:>13,}  "
                     f"{point['speedup']:>7.2f}  "
                     f"{point['efficiency']:>10.2f}  "
                     f"{point['wall_seconds']:>6.3f}")
    return "\n".join(lines)


def write_report(report: Dict, root: pathlib.Path = None) -> pathlib.Path:
    if root is None:
        root = pathlib.Path(__file__).resolve().parent.parent
    path = root / REPORT_NAME
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    return path


def main() -> int:
    num_prefixes = (int(sys.argv[1]) if len(sys.argv) > 1
                    else bench_prefix_count())
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else bench_seed()
    report = run_benchmark(num_prefixes, seed)
    report["scaling"] = run_scaling_benchmark(num_prefixes, seed)
    report["heartbeat_overhead"] = run_heartbeat_benchmark(num_prefixes,
                                                           seed)
    path = write_report(report)
    print(json.dumps(report, indent=2, sort_keys=True))
    print(render_scaling(report["scaling"]))
    print(f"saved: {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
