#!/usr/bin/env python
"""Calibration harness: runs all tools on one topology and prints the
shape metrics the paper reports, next to the paper's values.

Usage: python tools/calibrate.py [num_prefixes] [seed]
"""
import sys
import time

from repro.simnet import Topology, TopologyConfig, SimulatedNetwork
from repro.core import FlashRoute, FlashRouteConfig, random_targets
from repro.core.prober import _ScanRun
from repro.baselines import Yarrp, YarrpConfig, Scamper, ScamperConfig


def main() -> None:
    num_prefixes = int(sys.argv[1]) if len(sys.argv) > 1 else 2048
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 20201027
    topo = Topology(TopologyConfig(num_prefixes=num_prefixes, seed=seed))
    targets = random_targets(topo, seed=1)
    rows = {}

    def run(label, fn):
        t0 = time.time()
        res = fn()
        rows[label] = res
        print(f'{label:14s} ifaces={res.interface_count():6d} '
              f'probes={res.probes_sent:8d} vtime={res.duration:8.1f}s '
              f'wall={time.time()-t0:5.1f}s')
        return res

    run('FR-16', lambda: FlashRoute(FlashRouteConfig.flashroute_16()).scan(
        SimulatedNetwork(topo), targets=targets))
    run('FR-32', lambda: FlashRoute(FlashRouteConfig.flashroute_32()).scan(
        SimulatedNetwork(topo), targets=targets))
    run('Yarrp-16', lambda: Yarrp(YarrpConfig.yarrp_16()).scan(
        SimulatedNetwork(topo), targets=targets))
    run('Yarrp-32', lambda: Yarrp(YarrpConfig.yarrp_32()).scan(
        SimulatedNetwork(topo), targets=targets))
    run('Scamper-16', lambda: Scamper(ScamperConfig.scamper_16()).scan(
        SimulatedNetwork(topo), targets=targets))
    run('sim', lambda: FlashRoute(FlashRouteConfig.yarrp32_udp_simulation()).scan(
        SimulatedNetwork(topo), targets=targets, tool_name='sim'))

    fr16, fr32, y16, y32, sc, sim = (rows[k] for k in
                                     ['FR-16', 'FR-32', 'Yarrp-16',
                                      'Yarrp-32', 'Scamper-16', 'sim'])
    print()
    checks = [
        ('FR16/Yarrp32 probes', fr16.probes_sent / y32.probes_sent, 0.275),
        ('FR32/FR16 probes', fr32.probes_sent / fr16.probes_sent, 1.63),
        ('FR16/Yarrp32 time', fr16.duration / y32.duration, 0.287),
        ('Yarrp16/Yarrp32 ifaces', y16.interface_count() / y32.interface_count(), 0.49),
        ('Scamper/FR16 probes', sc.probes_sent / fr16.probes_sent, 1.347),
        ('Scamper/FR16 ifaces', sc.interface_count() / fr16.interface_count(), 1.008),
        ('FR16/sim ifaces', fr16.interface_count() / sim.interface_count(), 0.980),
        ('FR32/sim ifaces', fr32.interface_count() / sim.interface_count(), 0.974),
        ('Yarrp32tcp/sim ifaces', y32.interface_count() / sim.interface_count(), 0.966),
    ]
    for name, got, want in checks:
        print(f'  {name:26s} {got:6.3f}  (paper {want:.3f})')

    for mode, want_m, want_p in (('hitlist', 0.100, 0.282),
                                 ('random', 0.040, 0.190)):
        net = SimulatedNetwork(topo)
        run_state = _ScanRun(
            FlashRouteConfig(split_ttl=16, preprobe=mode), net, targets,
            None, None, None, None, None)
        run_state._run_preprobe()
        measured = len(run_state.preprobe_outcome.measured) / num_prefixes
        predicted = len(run_state.preprobe_outcome.predicted) / num_prefixes
        print(f'  {mode}-preprobe measured     {measured:6.3f}  (paper {want_m:.3f})')
        print(f'  {mode}-preprobe predicted    {predicted:6.3f}  (paper {want_p:.3f})')

    depth_of = {}
    for _pfx, hops in sim.routes.items():
        for ttl, addr in hops.items():
            known = depth_of.get(addr)
            if known is None or ttl < known:
                depth_of[addr] = ttl
    deep = sum(1 for d in depth_of.values() if d > 16)
    print(f'  unique ifaces deeper than 16   {deep/len(depth_of):6.3f}  '
          f'(needed ~0.45 for Yarrp-16 shape)')


if __name__ == '__main__':
    main()
