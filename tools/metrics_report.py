#!/usr/bin/env python
"""Summarize one ``--metrics-out`` snapshot or diff two of them.

Thin script wrapper over :func:`repro.obs.report.metrics_report`, for
use without installing the package (CI, ad-hoc comparisons of a cached
vs. uncached run, before/after fault-injection sweeps).

Usage: python tools/metrics_report.py METRICS.json [BASELINE.json]
                                      [--changed-only]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

if __package__ in (None, ""):  # allow "python tools/metrics_report.py"
    sys.path.insert(
        0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.obs.report import metrics_report  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Summarize one metrics snapshot or diff two")
    parser.add_argument("metrics", metavar="FILE",
                        help="metrics JSON written by scan --metrics-out")
    parser.add_argument("baseline", metavar="BASELINE", nargs="?",
                        default=None,
                        help="second snapshot to diff against (optional)")
    parser.add_argument("--changed-only", action="store_true",
                        help="when diffing, show only rows whose value "
                             "differs")
    parser.add_argument("--exposition", action="store_true",
                        help="render the snapshot as Prometheus text "
                             "exposition instead of a table")
    args = parser.parse_args(argv)
    try:
        report = metrics_report(args.metrics, args.baseline,
                                changed_only=args.changed_only,
                                exposition=args.exposition)
    except (OSError, ValueError, KeyError, json.JSONDecodeError) as exc:
        print(f"metrics-report: {exc}", file=sys.stderr)
        return 2
    print(report)
    return 0


if __name__ == "__main__":
    sys.exit(main())
